//! Hierarchical timing wheel: the O(1)-amortized backend of
//! [`crate::EventQueue`].
//!
//! A `BinaryHeap` future-event list pays O(log n) comparisons on every
//! push/pop. With the background-event refactor the queue carries ~2
//! perpetual events per active peer, so at 100k+ peers every message
//! arrival was paying for the whole resident population. The wheel makes
//! scheduling and dispatch cost proportional to *active work*:
//!
//! * **Near future** — [`LEVELS`] wheel levels of [`SLOTS`] slots each.
//!   Level `l` buckets time by bits `[6l, 6(l+1))` of the absolute
//!   microsecond timestamp, so level 0 resolves single microseconds and the
//!   whole wheel spans `2^36` µs (~19 virtual hours). Insertion picks the
//!   *lowest* level at which the event shares all higher time bits with the
//!   cursor, which keeps every occupied slot strictly ahead of the cursor —
//!   no wrap-around ambiguity. As the cursor advances into a higher-level
//!   bucket, that bucket *cascades*: its entries redistribute to lower
//!   levels (each entry cascades at most `LEVELS - 1` times in its life).
//! * **Far future** — events beyond the wheel horizon wait in an overflow
//!   `BinaryHeap` and migrate into the wheel in whole top-level-bucket
//!   groups when the cursor reaches their epoch.
//!
//! The pop order is the exact total order the heap backend produced —
//! ascending `(time, seq)` — which the conformance proptest in
//! `crates/sim/tests/properties.rs` pins against [`crate::HeapEventQueue`]
//! for arbitrary schedules, same-instant ties, cascading boundaries and
//! overflow times. Per-level occupancy bitmaps (one `u64` per level, since
//! a level has 64 slots) plus per-slot minima make `peek` O(levels) without
//! touching any bucket.

use std::collections::{BinaryHeap, VecDeque};

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per wheel level (64, so one `u64` bitmap covers a level).
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; level `l` buckets bits `[6l, 6(l+1))` of the timestamp.
const LEVELS: usize = 6;
/// Total bits the wheel resolves; times differing from the cursor above
/// this go to the overflow heap.
const WHEEL_BITS: u32 = SLOT_BITS * LEVELS as u32;

/// A scheduled entry: absolute due time in µs plus the global sequence
/// number that makes the pop order total.
#[derive(Clone, Debug)]
pub(crate) struct Entry<E> {
    pub(crate) time: u64,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

// Overflow-heap ordering: min-heap by (time, seq) — BinaryHeap is a
// max-heap, so the comparison is inverted.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The wheel proper. Pure priority-queue mechanics over `(time, seq)`;
/// clock semantics (`now`, scheduling asserts) live in
/// [`crate::EventQueue`].
///
/// # Invariants (at public-call boundaries)
///
/// * Every pending entry has `time >= cur`; entries with `time == cur` are
///   exactly the `ready` run (sorted by `seq`).
/// * Every occupied wheel slot is strictly ahead of the cursor at its
///   level, so the first occupied level (bottom-up) holds the earliest
///   pending time and a level-0 slot holds entries of one exact µs.
/// * Overflow entries differ from `cur` in bits `>= WHEEL_BITS`.
pub(crate) struct TimingWheel<E> {
    /// `LEVELS × SLOTS` buckets, flattened (`level * SLOTS + slot`).
    slots: Vec<Vec<Entry<E>>>,
    /// Per-level occupancy bitmap (bit `s` ⇔ `slots[l * SLOTS + s]`
    /// non-empty).
    occupied: [u64; LEVELS],
    /// Per-slot minimum pending time (`u64::MAX` when empty) — exact
    /// `peek` without draining.
    slot_min: Vec<u64>,
    /// Far-future events, beyond the wheel horizon.
    overflow: BinaryHeap<Entry<E>>,
    /// Entries due exactly at `cur`, in ascending `seq` order.
    ready: VecDeque<Entry<E>>,
    /// The cursor: absolute µs the wheel is positioned at.
    cur: u64,
    /// Pending entries across ready + wheel + overflow.
    len: usize,
    /// Reusable drain buffer (keeps cascades allocation-free).
    spill: Vec<Entry<E>>,
}

impl<E> TimingWheel<E> {
    pub(crate) fn new() -> Self {
        TimingWheel {
            slots: std::iter::repeat_with(Vec::new).take(LEVELS * SLOTS).collect(),
            occupied: [0; LEVELS],
            slot_min: vec![u64::MAX; LEVELS * SLOTS],
            overflow: BinaryHeap::new(),
            ready: VecDeque::new(),
            cur: 0,
            len: 0,
            spill: Vec::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules an entry. The caller guarantees `time >= cur` (enforced by
    /// the [`crate::EventQueue`] wrapper's not-into-the-past assert).
    pub(crate) fn schedule(&mut self, time: u64, seq: u64, event: E) {
        self.len += 1;
        self.place(Entry { time, seq, event });
    }

    /// Earliest pending `(time)` without mutating anything.
    pub(crate) fn peek_time(&self) -> Option<u64> {
        if !self.ready.is_empty() {
            return Some(self.cur);
        }
        for l in 0..LEVELS {
            if self.occupied[l] != 0 {
                let s = self.occupied[l].trailing_zeros() as usize;
                return Some(self.slot_min[l * SLOTS + s]);
            }
        }
        self.overflow.peek().map(|e| e.time)
    }

    /// Pops the globally earliest entry in `(time, seq)` order, advancing
    /// the cursor to its due time.
    pub(crate) fn pop(&mut self) -> Option<Entry<E>> {
        if self.ready.is_empty() {
            self.refill_ready();
        }
        let e = self.ready.pop_front()?;
        self.len -= 1;
        debug_assert_eq!(e.time, self.cur);
        Some(e)
    }

    /// Moves the cursor to `to` (µs). The caller guarantees no pending
    /// entry is strictly earlier than `to`; entries due exactly at `to`
    /// move to the ready run.
    pub(crate) fn advance_cur(&mut self, to: u64) {
        if to <= self.cur {
            return;
        }
        debug_assert!(self.ready.is_empty(), "ready entries would be skipped");
        debug_assert!(self.peek_time().is_none_or(|t| t >= to), "pending entries before {to}");
        self.cur = to;
        // Restore the strictly-ahead invariant: buckets whose range now
        // includes the cursor cascade down (their entries are all >= cur).
        self.cascade_cursor_buckets();
        // Overflow entries that entered the wheel's epoch migrate in.
        self.drain_overflow_epoch();
    }

    /// Files one entry relative to the current cursor: the ready run for
    /// `time == cur`, the lowest wheel level sharing all higher time bits
    /// with the cursor, or the overflow heap beyond the wheel horizon.
    fn place(&mut self, e: Entry<E>) {
        debug_assert!(e.time >= self.cur);
        let diff = e.time ^ self.cur;
        if diff == 0 {
            // Same instant as the cursor: belongs to the ready run. Direct
            // schedules arrive in ascending seq (the global counter), but
            // cascaded re-files can interleave, so keep the run sorted.
            let pos = self.ready.partition_point(|r| r.seq < e.seq);
            if pos == self.ready.len() {
                self.ready.push_back(e);
            } else {
                self.ready.insert(pos, e);
            }
            return;
        }
        if diff >> WHEEL_BITS != 0 {
            self.overflow.push(e);
            return;
        }
        let level = ((63 - diff.leading_zeros()) / SLOT_BITS) as usize;
        let slot = ((e.time >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        debug_assert!(
            slot as u64 > (self.cur >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)
                || level == 0
        );
        let idx = level * SLOTS + slot;
        self.occupied[level] |= 1 << slot;
        self.slot_min[idx] = self.slot_min[idx].min(e.time);
        self.slots[idx].push(e);
    }

    /// Empties bucket `idx`, clearing its bitmap bit and minimum, and
    /// re-files every entry against the current cursor.
    fn cascade_bucket(&mut self, level: usize, slot: usize) {
        let idx = level * SLOTS + slot;
        self.occupied[level] &= !(1 << slot);
        self.slot_min[idx] = u64::MAX;
        let mut spill = std::mem::take(&mut self.spill);
        spill.append(&mut self.slots[idx]);
        for e in spill.drain(..) {
            self.place(e);
        }
        self.spill = spill;
    }

    /// Cascades every bucket whose time range contains the cursor (needed
    /// after an externally driven cursor advance). Entries re-file strictly
    /// ahead of the cursor or into the ready run, so one bottom-up pass
    /// suffices.
    fn cascade_cursor_buckets(&mut self) {
        for level in 0..LEVELS {
            let cs = ((self.cur >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            if self.occupied[level] & (1 << cs) != 0 {
                self.cascade_bucket(level, cs);
            }
        }
    }

    /// Migrates overflow entries sharing the cursor's top-level epoch into
    /// the wheel (the heap pops them earliest-first, so same-time entries
    /// re-file in seq order).
    fn drain_overflow_epoch(&mut self) {
        while self.overflow.peek().is_some_and(|e| e.time >> WHEEL_BITS == self.cur >> WHEEL_BITS) {
            let e = self.overflow.pop().expect("peeked");
            self.place(e);
        }
    }

    /// Positions the cursor at the earliest pending time and fills the
    /// ready run with that instant's entries. No-op on an empty queue.
    fn refill_ready(&mut self) {
        loop {
            if !self.ready.is_empty() {
                return; // a cascade re-filed entries due exactly at `cur`
            }
            let Some(level) = (0..LEVELS).find(|&l| self.occupied[l] != 0) else {
                // Wheel empty: pull the next whole top-level epoch from the
                // overflow heap (partial pulls would let later schedules
                // into the wheel overtake still-parked overflow entries).
                let Some(top) = self.overflow.peek() else { return };
                self.cur = self.cur.max((top.time >> WHEEL_BITS) << WHEEL_BITS);
                self.drain_overflow_epoch();
                continue;
            };
            let slot = self.occupied[level].trailing_zeros() as usize;
            if level == 0 {
                // A level-0 slot is one exact microsecond: drain it as the
                // new ready run. Entries are seq-sorted except when a
                // cascade interleaved with direct schedules, so sort (O(n)
                // on the already-sorted common case).
                let idx = slot;
                self.occupied[0] &= !(1 << slot);
                let time = self.slot_min[idx];
                self.slot_min[idx] = u64::MAX;
                debug_assert!(time >= self.cur);
                self.cur = time;
                let mut run = std::mem::take(&mut self.spill);
                run.append(&mut self.slots[idx]);
                run.sort_unstable_by_key(|e| e.seq);
                debug_assert!(run.iter().all(|e| e.time == time));
                self.ready.extend(run.drain(..));
                self.spill = run;
                return;
            }
            // Advance into the earliest occupied higher-level bucket and
            // cascade it; the loop then resolves the lower levels.
            let span = 1u64 << (SLOT_BITS * (level as u32 + 1));
            let bucket_start =
                (self.cur & !(span - 1)) | ((slot as u64) << (SLOT_BITS * level as u32));
            self.cur = self.cur.max(bucket_start);
            self.cascade_bucket(level, slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<E: Clone>(w: &mut TimingWheel<E>) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| w.pop()).map(|e| (e.time, e.seq)).collect()
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimingWheel::new();
        let times = [5u64, 1, 70, 1, 4096, 63, 64, 5, 1 << 37, 0];
        for (seq, &t) in times.iter().enumerate() {
            w.schedule(t, seq as u64, ());
        }
        let mut expect: Vec<(u64, u64)> =
            times.iter().enumerate().map(|(s, &t)| (t, s as u64)).collect();
        expect.sort_unstable();
        assert_eq!(drain(&mut w), expect);
        assert!(w.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut w = TimingWheel::new();
        w.schedule(10, 0, "a");
        w.schedule(1_000_000, 1, "m");
        assert_eq!(w.pop().unwrap().event, "a"); // cur = 10
        w.schedule(10, 2, "b"); // same instant as cursor → ready run
        w.schedule(11, 3, "c");
        assert_eq!(w.pop().unwrap().event, "b");
        assert_eq!(w.pop().unwrap().event, "c");
        assert_eq!(w.pop().unwrap().event, "m");
        assert!(w.pop().is_none());
    }

    #[test]
    fn peek_is_exact_across_levels_and_overflow() {
        let mut w = TimingWheel::new();
        assert_eq!(w.peek_time(), None);
        w.schedule(1 << 38, 0, ());
        assert_eq!(w.peek_time(), Some(1 << 38));
        w.schedule(5_000, 1, ());
        assert_eq!(w.peek_time(), Some(5_000));
        w.schedule(17, 2, ());
        assert_eq!(w.peek_time(), Some(17));
        w.pop();
        assert_eq!(w.peek_time(), Some(5_000));
    }

    #[test]
    fn advance_cur_cascades_and_preserves_boundary_entries() {
        let mut w = TimingWheel::new();
        // Filed at a high level while the cursor is far away…
        w.schedule(1_000_000, 0, "boundary");
        w.schedule(1_000_001, 1, "after");
        // …then the cursor lands exactly on it without popping.
        w.advance_cur(1_000_000);
        assert_eq!(w.peek_time(), Some(1_000_000));
        // A later-seq entry at the same instant pops after the parked one.
        w.schedule(1_000_000, 2, "late");
        let order: Vec<&str> = std::iter::from_fn(|| w.pop()).map(|e| e.event).collect();
        assert_eq!(order, ["boundary", "late", "after"]);
    }

    #[test]
    fn advance_cur_into_stale_bucket_range_keeps_order() {
        let mut w = TimingWheel::new();
        // Entry filed at a high level relative to cur = 0.
        w.schedule(5_000, 7, "old-seq");
        // The cursor advances deep into that bucket's range; a fresh entry
        // at the same time then files at a lower level. Both must pop in
        // seq order.
        w.advance_cur(4_995);
        w.schedule(5_000, 9, "new-seq");
        let order: Vec<&str> = std::iter::from_fn(|| w.pop()).map(|e| e.event).collect();
        assert_eq!(order, ["old-seq", "new-seq"]);
    }

    #[test]
    fn overflow_epoch_migrates_whole_groups() {
        let mut w = TimingWheel::new();
        let epoch = 1u64 << WHEEL_BITS;
        w.schedule(epoch + 100, 0, "x");
        w.schedule(epoch + 5, 1, "y");
        w.schedule(epoch + 100, 2, "z");
        // All three sit in overflow; popping must still be (time, seq).
        let order: Vec<&str> = std::iter::from_fn(|| w.pop()).map(|e| e.event).collect();
        assert_eq!(order, ["y", "x", "z"]);
    }

    #[test]
    fn len_tracks_all_regions() {
        let mut w = TimingWheel::new();
        w.schedule(0, 0, ());
        w.schedule(100, 1, ());
        w.schedule(1 << 40, 2, ());
        assert_eq!(w.len(), 3);
        w.pop();
        w.pop();
        assert_eq!(w.len(), 1);
        w.pop();
        assert!(w.is_empty());
    }
}
