//! Property tests for the simulation kernel.

use pdht_sim::{EventQueue, HeapEventQueue, Histogram};
use pdht_types::SimTime;
use proptest::prelude::*;

/// Times that stress every region of the timing wheel: slot boundaries at
/// every level (powers of 64 ± 1), same-instant ties, and far-future
/// values beyond the 2^36-µs wheel horizon (the overflow heap).
fn wheel_stress_time() -> impl Strategy<Value = u64> {
    prop_oneof![
        // Dense near-future times (level-0/1 slots, heavy tie pressure).
        0u64..200,
        // Around each level's cascading boundary (64^1 … 64^5).
        62u64..130,
        4_094u64..4_162,
        262_142u64..262_210,
        16_777_214u64..16_777_282,
        ((1u64 << 30) - 2)..((1u64 << 30) + 66),
        // Mid-range wheel times.
        0u64..5_000_000,
        // Beyond the wheel horizon: overflow-heap territory.
        ((1u64 << 36) - 10)..((1u64 << 36) + 100_000),
        (1u64 << 40)..((1u64 << 40) + 1_000),
    ]
}

proptest! {
    /// The timing-wheel queue pops in an order identical to the reference
    /// `BinaryHeap` backend for arbitrary schedules — including
    /// same-instant ties, cascading boundaries, and far-future overflow
    /// times — under interleaved scheduling and popping.
    #[test]
    fn wheel_matches_heap_backend(
        phases in prop::collection::vec(
            (prop::collection::vec(wheel_stress_time(), 0..40), 0u8..40),
            1..8,
        )
    ) {
        let mut wheel: EventQueue<u32> = EventQueue::new();
        let mut heap: HeapEventQueue<u32> = HeapEventQueue::new();
        let mut id = 0u32;
        for (delays, pops) in phases {
            // Schedule a batch relative to the current clock (the queues
            // reject absolute times in the past).
            for d in delays {
                let at = wheel.now() + SimTime::from_micros(d);
                wheel.schedule_at(at, id);
                heap.schedule_at(at, id);
                id += 1;
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            // Pop a batch; every popped (time, payload) pair must match.
            for _ in 0..pops {
                let (a, b) = (wheel.pop(), heap.pop());
                prop_assert_eq!(&a, &b, "wheel and heap disagree");
                if a.is_none() {
                    break;
                }
                prop_assert_eq!(wheel.now(), heap.now());
            }
        }
        // Drain the rest: full total-order equivalence.
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(&a, &b, "wheel and heap disagree in the tail");
            if a.is_none() {
                break;
            }
        }
    }

    /// `advance_to` onto (or past) parked events agrees between backends:
    /// events due exactly at the advanced-to instant must still pop, in
    /// the same order.
    #[test]
    fn wheel_matches_heap_across_advance_to(
        times in prop::collection::vec(wheel_stress_time(), 1..60),
        advance in prop::collection::vec(0u64..(1u64 << 37), 1..6),
    ) {
        let mut wheel: EventQueue<u32> = EventQueue::new();
        let mut heap: HeapEventQueue<u32> = HeapEventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            wheel.schedule_at(SimTime::from_micros(t), i as u32);
            heap.schedule_at(SimTime::from_micros(t), i as u32);
        }
        for target in advance {
            // Clamp the advance to the earliest pending event: advancing
            // onto it is legal (and the interesting edge), past it is not.
            let at = SimTime::from_micros(target)
                .min(wheel.peek_time().unwrap_or(SimTime::from_micros(u64::MAX)))
                .max(wheel.now());
            wheel.advance_to(at);
            heap.advance_to(at);
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(a, b);
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(&a, &b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Whatever the schedule, events pop in non-decreasing time order, and
    /// same-time events pop in insertion order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        times in prop::collection::vec(0u64..10_000, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(ev) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(ev.time >= lt, "time went backwards");
                if ev.time == lt {
                    prop_assert!(ev.event > li, "same-time events must pop FIFO");
                }
            }
            prop_assert_eq!(ev.time, SimTime::from_micros(times[ev.event]));
            last = Some((ev.time, ev.event));
        }
        prop_assert!(q.is_empty());
    }

    /// The clock never runs backwards under interleaved schedule/pop.
    #[test]
    fn clock_is_monotone(
        ops in prop::collection::vec((any::<bool>(), 0u64..1_000), 1..100)
    ) {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut last_now = SimTime::ZERO;
        for (push, delay) in ops {
            if push {
                q.schedule_in(SimTime::from_micros(delay), 0);
            } else {
                q.pop();
            }
            prop_assert!(q.now() >= last_now);
            last_now = q.now();
        }
    }

    /// Histogram invariants: count/mean/max/quantile consistency for any
    /// input in the exact range.
    #[test]
    fn histogram_moments(values in prop::collection::vec(0u64..64, 1..500)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let n = values.len() as u64;
        prop_assert_eq!(h.count(), n);
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        let mean = values.iter().sum::<u64>() as f64 / n as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-9);
        // Quantiles are monotone and bounded by min/max.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let mut prev = 0;
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v >= prev);
            prop_assert!(v <= h.max());
            prev = v;
        }
        // Exact-range quantiles must equal the order statistic.
        prop_assert_eq!(h.quantile(1.0), sorted[sorted.len() - 1]);
        prop_assert_eq!(h.quantile(0.0), sorted[0]);
    }
}
