//! Property tests for the simulation kernel.

use pdht_sim::{EventQueue, Histogram};
use pdht_types::SimTime;
use proptest::prelude::*;

proptest! {
    /// Whatever the schedule, events pop in non-decreasing time order, and
    /// same-time events pop in insertion order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        times in prop::collection::vec(0u64..10_000, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(ev) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(ev.time >= lt, "time went backwards");
                if ev.time == lt {
                    prop_assert!(ev.event > li, "same-time events must pop FIFO");
                }
            }
            prop_assert_eq!(ev.time, SimTime::from_micros(times[ev.event]));
            last = Some((ev.time, ev.event));
        }
        prop_assert!(q.is_empty());
    }

    /// The clock never runs backwards under interleaved schedule/pop.
    #[test]
    fn clock_is_monotone(
        ops in prop::collection::vec((any::<bool>(), 0u64..1_000), 1..100)
    ) {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut last_now = SimTime::ZERO;
        for (push, delay) in ops {
            if push {
                q.schedule_in(SimTime::from_micros(delay), 0);
            } else {
                q.pop();
            }
            prop_assert!(q.now() >= last_now);
            last_now = q.now();
        }
    }

    /// Histogram invariants: count/mean/max/quantile consistency for any
    /// input in the exact range.
    #[test]
    fn histogram_moments(values in prop::collection::vec(0u64..64, 1..500)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let n = values.len() as u64;
        prop_assert_eq!(h.count(), n);
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        let mean = values.iter().sum::<u64>() as f64 / n as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-9);
        // Quantiles are monotone and bounded by min/max.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let mut prev = 0;
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v >= prev);
            prop_assert!(v <= h.max());
            prev = v;
        }
        // Exact-range quantiles must equal the order statistic.
        prop_assert_eq!(h.quantile(1.0), sorted[sorted.len() - 1]);
        prop_assert_eq!(h.quantile(0.0), sorted[0]);
    }
}
