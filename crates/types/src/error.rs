//! The workspace error type.
//!
//! Hand-rolled (no `thiserror` in the offline crate set); variants cover the
//! failure surfaces of the public APIs across crates.

use std::fmt;

/// Errors surfaced by the PDHT crates.
#[derive(Debug, Clone, PartialEq)]
pub enum PdhtError {
    /// A configuration value is out of its legal domain.
    InvalidConfig {
        /// The offending parameter name.
        param: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// An operation referenced a peer id outside the network.
    UnknownPeer(u32),
    /// An operation requires an online peer but the peer is offline.
    PeerOffline(u32),
    /// A lookup failed to locate a responsible/holding peer.
    LookupFailed {
        /// Hex key that was looked up.
        key: u64,
        /// Why the lookup failed.
        reason: String,
    },
    /// The analytical model failed to converge.
    NoConvergence {
        /// What was being solved.
        what: &'static str,
        /// Iterations performed before giving up.
        iterations: u32,
    },
    /// Capacity exhausted (e.g. a peer's index storage).
    CapacityExceeded {
        /// What ran out.
        what: &'static str,
        /// The configured limit.
        limit: usize,
    },
    /// I/O error while writing experiment output.
    Io(String),
}

impl fmt::Display for PdhtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdhtError::InvalidConfig { param, reason } => {
                write!(f, "invalid configuration for `{param}`: {reason}")
            }
            PdhtError::UnknownPeer(id) => write!(f, "unknown peer id {id}"),
            PdhtError::PeerOffline(id) => write!(f, "peer {id} is offline"),
            PdhtError::LookupFailed { key, reason } => {
                write!(f, "lookup of key {key:016x} failed: {reason}")
            }
            PdhtError::NoConvergence { what, iterations } => {
                write!(f, "{what} did not converge after {iterations} iterations")
            }
            PdhtError::CapacityExceeded { what, limit } => {
                write!(f, "{what} capacity of {limit} exceeded")
            }
            PdhtError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for PdhtError {}

impl From<std::io::Error> for PdhtError {
    fn from(e: std::io::Error) -> Self {
        PdhtError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PdhtError::InvalidConfig { param: "repl", reason: "must be >= 1".into() };
        assert!(e.to_string().contains("repl"));
        assert!(e.to_string().contains(">= 1"));

        let e = PdhtError::LookupFailed { key: 0xabcd, reason: "no replica online".into() };
        assert!(e.to_string().contains("000000000000abcd"));

        let e = PdhtError::NoConvergence { what: "fixed point", iterations: 50 };
        assert!(e.to_string().contains("50"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: PdhtError = io.into();
        assert!(matches!(e, PdhtError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn errors_are_std_error() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(PdhtError::UnknownPeer(3));
    }
}
