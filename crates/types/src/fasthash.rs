//! A fast, non-cryptographic hasher for hot integer-keyed maps.
//!
//! The simulators index maps by `PeerId`/`Key` millions of times per run;
//! SipHash (std's default) is needlessly slow for that. `rustc-hash` is not
//! in the offline crate set, so we implement the same multiply-rotate scheme
//! (FxHash) here — it is ~10 lines and needs no external code.
//!
//! Not HashDoS-resistant; only use for simulator-internal state keyed by
//! values we generate ourselves.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from FxHash (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style hasher state.
#[derive(Default, Clone, Copy)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// Drop-in `HashMap` with the fast hasher.
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// Drop-in `HashSet` with the fast hasher.
pub type FastHashSet<T> = HashSet<T, FastBuildHasher>;

/// Convenience constructor (capacity-reserving) for [`FastHashMap`].
pub fn map_with_capacity<K, V>(cap: usize) -> FastHashMap<K, V> {
    FastHashMap::with_capacity_and_hasher(cap, FastBuildHasher::default())
}

/// Convenience constructor (capacity-reserving) for [`FastHashSet`].
pub fn set_with_capacity<T>(cap: usize) -> FastHashSet<T> {
    FastHashSet::with_capacity_and_hasher(cap, FastBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: &T) -> u64 {
        FastBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_eq!(hash_one(&"abc"), hash_one(&"abc"));
    }

    #[test]
    fn distinguishes_nearby_integers() {
        let hashes: FastHashSet<u64> = (0u64..10_000).map(|i| hash_one(&i)).collect();
        assert_eq!(hashes.len(), 10_000, "no collisions expected on tiny dense range");
    }

    #[test]
    fn byte_stream_and_tail_handling() {
        // Distinct strings of lengths around the 8-byte chunk boundary
        // must hash distinctly.
        let inputs = ["", "a", "abcdefg", "abcdefgh", "abcdefghi", "abcdefgh1"];
        let hashes: FastHashSet<u64> = inputs.iter().map(hash_one).collect();
        assert_eq!(hashes.len(), inputs.len());
    }

    #[test]
    fn map_and_set_work_as_std() {
        let mut m: FastHashMap<u32, &str> = map_with_capacity(4);
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);

        let mut s: FastHashSet<u32> = set_with_capacity(4);
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
