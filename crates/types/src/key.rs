//! The binary key space.
//!
//! The paper's analysis assumes a binary key space (Section 3.2, footnote 3).
//! We use 64-bit keys: metadata key-value pairs are hashed into a [`Key`] and
//! the structured overlay partitions the space by bit prefixes ([`Prefix`]),
//! exactly like P-Grid's trie paths.

use std::fmt;

/// Number of bits in a key.
pub const KEY_BITS: u32 = 64;

/// A point in the binary key space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key(pub u64);

impl Key {
    /// The zero key.
    pub const MIN: Key = Key(0);
    /// The all-ones key.
    pub const MAX: Key = Key(u64::MAX);

    /// Returns bit `i` of the key, where bit 0 is the *most significant* bit
    /// (trie convention: routing decisions start from the top bit).
    ///
    /// # Panics
    /// Panics if `i >= KEY_BITS`.
    #[inline]
    pub fn bit(self, i: u32) -> bool {
        assert!(i < KEY_BITS, "bit index {i} out of range");
        (self.0 >> (KEY_BITS - 1 - i)) & 1 == 1
    }

    /// Length of the common prefix (in bits, from the MSB) with `other`.
    #[inline]
    pub fn common_prefix_len(self, other: Key) -> u32 {
        (self.0 ^ other.0).leading_zeros()
    }

    /// XOR distance, as used by Kademlia-style metrics; handy for tests.
    #[inline]
    pub fn xor_distance(self, other: Key) -> u64 {
        self.0 ^ other.0
    }

    /// Clockwise distance on the 2^64 ring from `self` to `other`
    /// (Chord-style metric).
    #[inline]
    pub fn ring_distance_to(self, other: Key) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// The prefix consisting of the first `len` bits of this key.
    #[inline]
    pub fn prefix(self, len: u32) -> Prefix {
        Prefix::new(self.0, len)
    }

    /// Hashes arbitrary bytes into a key: 64-bit FNV-1a followed by a
    /// SplitMix64 finalizer — the classic "hash the metadata pair"
    /// construction of \[FeBi04\]. The finalizer matters because the overlay
    /// trie partitions on the *most significant* bits, where raw FNV-1a has
    /// poor avalanche for short inputs.
    pub fn hash_bytes(bytes: &[u8]) -> Key {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        // SplitMix64 finalizer for full-width avalanche.
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Key(h ^ (h >> 31))
    }

    /// Hashes a string (e.g. `"title=Weather Iráklion"`).
    #[inline]
    pub fn hash_str(s: &str) -> Key {
        Key::hash_bytes(s.as_bytes())
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({:016x})", self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl From<u64> for Key {
    fn from(v: u64) -> Self {
        Key(v)
    }
}

/// A bit prefix of the key space: the first `len` bits of `bits`
/// (MSB-aligned), identifying one leaf/region of the overlay trie.
///
/// `len == 0` is the whole key space.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Prefix {
    bits: u64,
    len: u32,
}

impl Prefix {
    /// The empty prefix (whole key space).
    pub const ROOT: Prefix = Prefix { bits: 0, len: 0 };

    /// Creates a prefix from the top `len` bits of `bits`; lower bits are
    /// cleared so equal prefixes compare equal.
    ///
    /// # Panics
    /// Panics if `len > KEY_BITS`.
    #[inline]
    pub fn new(bits: u64, len: u32) -> Prefix {
        assert!(len <= KEY_BITS, "prefix length {len} out of range");
        let masked = if len == 0 { 0 } else { bits & (u64::MAX << (KEY_BITS - len)) };
        Prefix { bits: masked, len }
    }

    /// Prefix length in bits.
    #[inline]
    pub fn len(self) -> u32 {
        self.len
    }

    /// `true` for the zero-length (root) prefix.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// The MSB-aligned bit pattern.
    #[inline]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Does `key` fall under this prefix?
    #[inline]
    pub fn contains(self, key: Key) -> bool {
        key.common_prefix_len(Key(self.bits)) >= self.len
    }

    /// Bit `i` (0-based from the MSB) of the prefix.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn bit(self, i: u32) -> bool {
        assert!(i < self.len, "bit index {i} out of prefix of length {}", self.len);
        Key(self.bits).bit(i)
    }

    /// Extends the prefix by one bit.
    ///
    /// # Panics
    /// Panics if the prefix is already `KEY_BITS` long.
    #[inline]
    pub fn child(self, bit: bool) -> Prefix {
        assert!(self.len < KEY_BITS, "cannot extend a full-length prefix");
        let mut bits = self.bits;
        if bit {
            bits |= 1u64 << (KEY_BITS - 1 - self.len);
        }
        Prefix { bits, len: self.len + 1 }
    }

    /// Drops the last bit of the prefix.
    ///
    /// # Panics
    /// Panics on the root prefix.
    #[inline]
    pub fn parent(self) -> Prefix {
        assert!(self.len > 0, "root prefix has no parent");
        Prefix::new(self.bits, self.len - 1)
    }

    /// The prefix that shares all but the last bit, with the last bit
    /// flipped — the "other side" that P-Grid routing references at each
    /// level.
    ///
    /// # Panics
    /// Panics on the root prefix.
    #[inline]
    pub fn sibling(self) -> Prefix {
        assert!(self.len > 0, "root prefix has no sibling");
        let flip = 1u64 << (KEY_BITS - self.len);
        Prefix { bits: self.bits ^ flip, len: self.len }
    }

    /// Is `self` a prefix of (or equal to) `other`?
    #[inline]
    pub fn is_prefix_of(self, other: Prefix) -> bool {
        self.len <= other.len && Prefix::new(other.bits, self.len) == self
    }

    /// The lowest key under this prefix.
    #[inline]
    pub fn min_key(self) -> Key {
        Key(self.bits)
    }

    /// The highest key under this prefix.
    #[inline]
    pub fn max_key(self) -> Key {
        if self.len == 0 {
            Key::MAX
        } else if self.len == KEY_BITS {
            Key(self.bits)
        } else {
            Key(self.bits | (u64::MAX >> self.len))
        }
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix(")?;
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len == 0 {
            return write!(f, "ε");
        }
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_indexing_is_msb_first() {
        let k = Key(0x8000_0000_0000_0001);
        assert!(k.bit(0));
        assert!(!k.bit(1));
        assert!(k.bit(63));
    }

    #[test]
    fn common_prefix_len_matches_manual_comparison() {
        assert_eq!(Key(0).common_prefix_len(Key(0)), 64);
        assert_eq!(Key(0).common_prefix_len(Key(1)), 63);
        let a = Key(0b1010u64 << 60);
        let b = Key(0b1011u64 << 60);
        assert_eq!(a.common_prefix_len(b), 3);
    }

    #[test]
    fn prefix_contains_its_key_range() {
        let p = Prefix::new(0b101u64 << 61, 3);
        assert!(p.contains(p.min_key()));
        assert!(p.contains(p.max_key()));
        assert!(!p.contains(Key(p.min_key().0.wrapping_sub(1))));
        assert!(!p.contains(Key(p.max_key().0.wrapping_add(1))));
    }

    #[test]
    fn child_parent_roundtrip() {
        let mut p = Prefix::ROOT;
        for bit in [true, false, true, true, false] {
            p = p.child(bit);
        }
        assert_eq!(p.len(), 5);
        assert_eq!(format!("{p}"), "10110");
        for _ in 0..5 {
            p = p.parent();
        }
        assert_eq!(p, Prefix::ROOT);
    }

    #[test]
    fn sibling_flips_exactly_the_last_bit() {
        let p = Prefix::new(0b1010u64 << 60, 4);
        let s = p.sibling();
        assert_eq!(format!("{s}"), "1011");
        assert_eq!(s.sibling(), p);
    }

    #[test]
    fn sibling_ranges_are_disjoint_and_cover_parent() {
        let p = Prefix::new(0b01u64 << 62, 2);
        let s = p.sibling();
        assert!(!s.contains(p.min_key()));
        assert!(!p.contains(s.min_key()));
        let parent = p.parent();
        assert!(parent.contains(p.min_key()) && parent.contains(s.max_key()));
    }

    #[test]
    fn is_prefix_of_behaviour() {
        let p = Prefix::new(0b10u64 << 62, 2);
        let longer = p.child(true).child(false);
        assert!(p.is_prefix_of(longer));
        assert!(!longer.is_prefix_of(p));
        assert!(Prefix::ROOT.is_prefix_of(p));
        assert!(p.is_prefix_of(p));
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let a = Key::hash_str("title=Weather Iráklion");
        let b = Key::hash_str("title=Weather Iráklion");
        let c = Key::hash_str("size=2405");
        assert_eq!(a, b);
        assert_ne!(a, c);
        // FNV of distinct short strings should differ in the top bits often
        // enough for trie partitioning; sanity-check a small collection.
        let keys: Vec<Key> = (0..64).map(|i| Key::hash_str(&format!("key-{i}"))).collect();
        let top_bits: std::collections::HashSet<bool> = keys.iter().map(|k| k.bit(0)).collect();
        assert_eq!(top_bits.len(), 2, "both top-bit values should occur");
    }

    #[test]
    fn ring_distance_wraps() {
        assert_eq!(Key(5).ring_distance_to(Key(7)), 2);
        assert_eq!(Key(7).ring_distance_to(Key(5)), u64::MAX - 1);
    }

    #[test]
    fn root_prefix_covers_everything() {
        assert!(Prefix::ROOT.contains(Key::MIN));
        assert!(Prefix::ROOT.contains(Key::MAX));
        assert_eq!(Prefix::ROOT.max_key(), Key::MAX);
        assert_eq!(format!("{}", Prefix::ROOT), "ε");
    }

    #[test]
    fn full_length_prefix_is_a_point() {
        let k = Key(0xdead_beef_0123_4567);
        let p = k.prefix(KEY_BITS);
        assert_eq!(p.min_key(), k);
        assert_eq!(p.max_key(), k);
        assert!(p.contains(k));
        assert!(!p.contains(Key(k.0 ^ 1)));
    }
}
