//! Shared primitives for the PDHT reproduction.
//!
//! This crate hosts the vocabulary types used by every other crate in the
//! workspace:
//!
//! * [`PeerId`] — dense peer identifiers suitable for array indexing,
//! * [`Key`] and [`Prefix`] — the 64-bit binary key space of the structured
//!   overlay (the paper assumes a binary key space, Section 3.2 footnote 3),
//! * [`MessageKind`] and [`MsgCounts`] — the message taxonomy used for cost
//!   accounting (the paper's primary metric is messages, Section 3),
//! * [`SimTime`] / [`Round`] — the virtual-time axis (one *round* = 1 s),
//! * [`fasthash`] — an FxHash-style fast hasher for hot integer-keyed maps,
//! * [`rng`] — deterministic per-component random-number streams,
//! * [`PdhtError`] — the shared error type.

pub mod error;
pub mod fasthash;
pub mod key;
pub mod liveness;
pub mod msg;
pub mod peer;
pub mod rng;
pub mod time;

pub use error::PdhtError;
pub use fasthash::{FastHashMap, FastHashSet};
pub use key::{Key, Prefix, KEY_BITS};
pub use liveness::Liveness;
pub use msg::{MessageKind, MsgCounts};
pub use peer::{PeerId, PeerStatus};
pub use rng::{mix64, RngStreams};
pub use time::{Round, SimTime};

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, PdhtError>;
