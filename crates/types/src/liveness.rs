//! A shared view of which peers are currently online.
//!
//! Churn produces this; overlays, gossip and search consume it. Kept in the
//! types crate so all substrates agree on one representation.

use crate::peer::PeerId;

/// Online/offline status for a dense peer population.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Liveness {
    online: Vec<bool>,
    online_count: usize,
}

impl Liveness {
    /// All `n` peers online.
    pub fn all_online(n: usize) -> Liveness {
        Liveness { online: vec![true; n], online_count: n }
    }

    /// All `n` peers offline.
    pub fn all_offline(n: usize) -> Liveness {
        Liveness { online: vec![false; n], online_count: 0 }
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.online.len()
    }

    /// `true` when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.online.is_empty()
    }

    /// Is `peer` online? Out-of-range ids are reported offline rather than
    /// panicking (overlays may hold references to retired peers).
    #[inline]
    pub fn is_online(&self, peer: PeerId) -> bool {
        self.online.get(peer.idx()).copied().unwrap_or(false)
    }

    /// Sets the status of `peer`.
    ///
    /// # Panics
    /// Panics if `peer` is out of range.
    pub fn set(&mut self, peer: PeerId, online: bool) {
        let slot = &mut self.online[peer.idx()];
        match (*slot, online) {
            (false, true) => self.online_count += 1,
            (true, false) => self.online_count -= 1,
            _ => {}
        }
        *slot = online;
    }

    /// Number of online peers.
    pub fn online_count(&self) -> usize {
        self.online_count
    }

    /// Fraction of peers online (0 when empty).
    pub fn availability(&self) -> f64 {
        if self.online.is_empty() {
            0.0
        } else {
            self.online_count as f64 / self.online.len() as f64
        }
    }

    /// Iterates ids of online peers in index order.
    pub fn iter_online(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.online.iter().enumerate().filter(|&(_, &on)| on).map(|(i, _)| PeerId::from_idx(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_counts() {
        let l = Liveness::all_online(5);
        assert_eq!(l.online_count(), 5);
        assert_eq!(l.availability(), 1.0);
        let l = Liveness::all_offline(5);
        assert_eq!(l.online_count(), 0);
        assert_eq!(l.availability(), 0.0);
    }

    #[test]
    fn set_maintains_count() {
        let mut l = Liveness::all_online(4);
        l.set(PeerId(1), false);
        l.set(PeerId(2), false);
        assert_eq!(l.online_count(), 2);
        // Idempotent transitions don't drift the count.
        l.set(PeerId(1), false);
        assert_eq!(l.online_count(), 2);
        l.set(PeerId(1), true);
        assert_eq!(l.online_count(), 3);
        assert!((l.availability() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_is_offline() {
        let l = Liveness::all_online(3);
        assert!(!l.is_online(PeerId(99)));
    }

    #[test]
    fn iter_online_lists_exactly_the_online() {
        let mut l = Liveness::all_online(5);
        l.set(PeerId(0), false);
        l.set(PeerId(3), false);
        let ids: Vec<u32> = l.iter_online().map(|p| p.0).collect();
        assert_eq!(ids, vec![1, 2, 4]);
    }

    #[test]
    fn empty_population() {
        let l = Liveness::all_online(0);
        assert!(l.is_empty());
        assert_eq!(l.availability(), 0.0);
    }
}
