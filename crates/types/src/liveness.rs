//! A shared view of which peers are currently online.
//!
//! Churn produces this; overlays, gossip and search consume it. Kept in the
//! types crate so all substrates agree on one representation.
//!
//! Backed by u64 bitmap words (not a byte-per-peer `Vec<bool>`): the query
//! pipeline probes `is_online` once per message, so at 100k peers the whole
//! population's liveness fits in ~12 KB of cache instead of 100 KB, and a
//! probe is one word load plus a bit test. Iteration order is word-wise
//! ascending — identical to the old index-order scan — so nothing that
//! draws RNG values per online peer can observe the representation change.

use crate::peer::PeerId;

/// Bits per bitmap word.
const WORD_BITS: usize = 64;

/// Online/offline status for a dense peer population.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Liveness {
    /// Bit `i % 64` of word `i / 64` is peer `i`'s status. Bits at or
    /// beyond `len` are always zero (so popcounts never need masking).
    words: Vec<u64>,
    len: usize,
    online_count: usize,
}

impl Liveness {
    /// All `n` peers online.
    pub fn all_online(n: usize) -> Liveness {
        let mut words = vec![u64::MAX; n.div_ceil(WORD_BITS)];
        if let Some(last) = words.last_mut() {
            let tail = n % WORD_BITS;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        Liveness { words, len: n, online_count: n }
    }

    /// All `n` peers offline.
    pub fn all_offline(n: usize) -> Liveness {
        Liveness { words: vec![0; n.div_ceil(WORD_BITS)], len: n, online_count: 0 }
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is `peer` online? Out-of-range ids are reported offline rather than
    /// panicking (overlays may hold references to retired peers).
    #[inline]
    pub fn is_online(&self, peer: PeerId) -> bool {
        let i = peer.idx();
        i < self.len && self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Sets the status of `peer`.
    ///
    /// # Panics
    /// Panics if `peer` is out of range.
    pub fn set(&mut self, peer: PeerId, online: bool) {
        let i = peer.idx();
        assert!(i < self.len, "peer {i} out of range for population {}", self.len);
        let word = &mut self.words[i / WORD_BITS];
        let bit = 1u64 << (i % WORD_BITS);
        match (*word & bit != 0, online) {
            (false, true) => {
                *word |= bit;
                self.online_count += 1;
            }
            (true, false) => {
                *word &= !bit;
                self.online_count -= 1;
            }
            _ => {}
        }
    }

    /// Number of online peers.
    pub fn online_count(&self) -> usize {
        self.online_count
    }

    /// Fraction of peers online (0 when empty).
    pub fn availability(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.online_count as f64 / self.len as f64
        }
    }

    /// Iterates ids of online peers in ascending index order (word-wise:
    /// each word's set bits are drained lowest-first, which is exactly the
    /// old per-index scan order).
    pub fn iter_online(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let base = w * WORD_BITS;
            std::iter::successors((word != 0).then_some(word), |&rest| {
                let rest = rest & (rest - 1);
                (rest != 0).then_some(rest)
            })
            .map(move |rest| PeerId::from_idx(base + rest.trailing_zeros() as usize))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_counts() {
        let l = Liveness::all_online(5);
        assert_eq!(l.online_count(), 5);
        assert_eq!(l.availability(), 1.0);
        let l = Liveness::all_offline(5);
        assert_eq!(l.online_count(), 0);
        assert_eq!(l.availability(), 0.0);
    }

    #[test]
    fn set_maintains_count() {
        let mut l = Liveness::all_online(4);
        l.set(PeerId(1), false);
        l.set(PeerId(2), false);
        assert_eq!(l.online_count(), 2);
        // Idempotent transitions don't drift the count.
        l.set(PeerId(1), false);
        assert_eq!(l.online_count(), 2);
        l.set(PeerId(1), true);
        assert_eq!(l.online_count(), 3);
        assert!((l.availability() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_is_offline() {
        let l = Liveness::all_online(3);
        assert!(!l.is_online(PeerId(99)));
        // Including ids inside the tail word but past the population: bits
        // beyond `len` are zero and the bound check rejects them anyway.
        assert!(!l.is_online(PeerId(3)));
        assert!(!l.is_online(PeerId(63)));
    }

    #[test]
    fn iter_online_lists_exactly_the_online() {
        let mut l = Liveness::all_online(5);
        l.set(PeerId(0), false);
        l.set(PeerId(3), false);
        let ids: Vec<u32> = l.iter_online().map(|p| p.0).collect();
        assert_eq!(ids, vec![1, 2, 4]);
    }

    #[test]
    fn iter_online_crosses_word_boundaries_in_index_order() {
        let mut l = Liveness::all_offline(200);
        for &i in &[0u32, 63, 64, 65, 127, 128, 199] {
            l.set(PeerId(i), true);
        }
        let ids: Vec<u32> = l.iter_online().map(|p| p.0).collect();
        assert_eq!(ids, vec![0, 63, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn empty_population() {
        let l = Liveness::all_online(0);
        assert!(l.is_empty());
        assert_eq!(l.availability(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut l = Liveness::all_online(3);
        l.set(PeerId(3), true);
    }

    /// The byte-per-peer representation the bitmap replaced; the proptests
    /// below hold the two equivalent under arbitrary set sequences.
    struct VecRef {
        online: Vec<bool>,
    }

    impl VecRef {
        fn count(&self) -> usize {
            self.online.iter().filter(|&&b| b).count()
        }
    }

    proptest! {
        /// set/is_online/online_count agree with the Vec<bool> reference
        /// under any transition sequence, and out-of-range ids stay
        /// offline.
        #[test]
        fn bitmap_matches_vec_bool_reference(
            n in 0usize..300,
            ops in prop::collection::vec((0u32..310, any::<bool>()), 0..64),
        ) {
            let mut l = Liveness::all_offline(n);
            let mut r = VecRef { online: vec![false; n] };
            for (peer, online) in ops {
                if (peer as usize) < n {
                    l.set(PeerId(peer), online);
                    r.online[peer as usize] = online;
                }
                prop_assert_eq!(l.online_count(), r.count());
            }
            for i in 0..310u32 {
                let expect = (i as usize) < n && r.online[i as usize];
                prop_assert_eq!(l.is_online(PeerId(i)), expect, "peer {}", i);
            }
        }

        /// iter_online yields exactly the online ids, ascending — the
        /// draw-order invariant everything downstream of churn relies on.
        #[test]
        fn iter_online_is_the_ascending_online_subset(
            n in 0usize..300,
            offline in prop::collection::vec(0u32..300, 0..64),
        ) {
            let mut l = Liveness::all_online(n);
            let mut r = vec![true; n];
            for peer in offline {
                if (peer as usize) < n {
                    l.set(PeerId(peer), false);
                    r[peer as usize] = false;
                }
            }
            let got: Vec<u32> = l.iter_online().map(|p| p.0).collect();
            let want: Vec<u32> =
                (0..n as u32).filter(|&i| r[i as usize]).collect();
            prop_assert_eq!(got, want);
        }
    }
}
