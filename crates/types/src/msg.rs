//! Message taxonomy and cost accounting.
//!
//! The paper counts *messages* as the main cost (Section 3). Every simulated
//! hop, probe, flood step, walk step or gossip exchange increments one
//! [`MessageKind`] counter so experiments can report totals split by cause —
//! the same decomposition as the model's terms `cSIndx`, `cSUnstr`, `cRtn`,
//! `cUpd`.

use std::fmt;
use std::ops::{AddAssign, Index, IndexMut};

/// Categories of messages exchanged in the simulated system.
///
/// The grouping mirrors the paper's cost terms:
/// * index search cost `cSIndx` → [`RouteHop`](MessageKind::RouteHop),
/// * broadcast search cost `cSUnstr` → [`FloodStep`](MessageKind::FloodStep)
///   / [`WalkStep`](MessageKind::WalkStep),
/// * routing maintenance `cRtn` → [`Probe`](MessageKind::Probe),
/// * update/replica cost `cUpd`, `repl·dup2` → the gossip variants,
/// * selection-algorithm insert-on-miss → [`IndexInsert`](MessageKind::IndexInsert).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum MessageKind {
    /// One hop of a structured-overlay lookup.
    RouteHop,
    /// A liveness probe of a routing-table entry.
    Probe,
    /// One transmission during unstructured flooding (duplicates included).
    FloodStep,
    /// One step of a random walker.
    WalkStep,
    /// A push of a rumor (update) inside a replica subnetwork.
    GossipPush,
    /// A pull request/response pair issued by a returning replica.
    GossipPull,
    /// A flood step inside the replica subnetwork (Eq. 16's `repl·dup2`).
    ReplicaFlood,
    /// A hop performed to insert a key into the index (selection algorithm).
    IndexInsert,
    /// A direct query sent to a known index peer (entry message).
    QueryEntry,
    /// Overlay join / leave / stabilization traffic.
    Membership,
}

impl MessageKind {
    /// Every variant, in `repr` order.
    pub const ALL: [MessageKind; 10] = [
        MessageKind::RouteHop,
        MessageKind::Probe,
        MessageKind::FloodStep,
        MessageKind::WalkStep,
        MessageKind::GossipPush,
        MessageKind::GossipPull,
        MessageKind::ReplicaFlood,
        MessageKind::IndexInsert,
        MessageKind::QueryEntry,
        MessageKind::Membership,
    ];

    /// Number of variants.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable, short lowercase name (used in CSV headers).
    pub fn name(self) -> &'static str {
        match self {
            MessageKind::RouteHop => "route_hop",
            MessageKind::Probe => "probe",
            MessageKind::FloodStep => "flood_step",
            MessageKind::WalkStep => "walk_step",
            MessageKind::GossipPush => "gossip_push",
            MessageKind::GossipPull => "gossip_pull",
            MessageKind::ReplicaFlood => "replica_flood",
            MessageKind::IndexInsert => "index_insert",
            MessageKind::QueryEntry => "query_entry",
            MessageKind::Membership => "membership",
        }
    }
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A per-[`MessageKind`] message counter.
///
/// Plain array indexing keeps this allocation-free and branch-free on the
/// hot path of the simulators.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MsgCounts {
    counts: [u64; MessageKind::COUNT],
}

impl MsgCounts {
    /// An all-zero counter.
    pub const fn new() -> Self {
        MsgCounts { counts: [0; MessageKind::COUNT] }
    }

    /// Records `n` messages of `kind`.
    #[inline]
    pub fn add(&mut self, kind: MessageKind, n: u64) {
        self.counts[kind as usize] += n;
    }

    /// Records a single message of `kind`.
    #[inline]
    pub fn incr(&mut self, kind: MessageKind) {
        self.add(kind, 1);
    }

    /// Total messages across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum over a subset of kinds.
    pub fn sum_of(&self, kinds: &[MessageKind]) -> u64 {
        kinds.iter().map(|&k| self.counts[k as usize]).sum()
    }

    /// Messages attributable to *index search* (the model's `cSIndx` /
    /// `cSIndx2` terms): routing hops, entry messages, replica floods and
    /// insert hops.
    pub fn index_search_total(&self) -> u64 {
        self.sum_of(&[
            MessageKind::RouteHop,
            MessageKind::QueryEntry,
            MessageKind::ReplicaFlood,
            MessageKind::IndexInsert,
        ])
    }

    /// Messages attributable to *broadcast search* (`cSUnstr`).
    pub fn unstructured_total(&self) -> u64 {
        self.sum_of(&[MessageKind::FloodStep, MessageKind::WalkStep])
    }

    /// Messages attributable to *routing maintenance* (`cRtn`).
    pub fn maintenance_total(&self) -> u64 {
        self.sum_of(&[MessageKind::Probe, MessageKind::Membership])
    }

    /// Messages attributable to *updates* (`cUpd`).
    pub fn update_total(&self) -> u64 {
        self.sum_of(&[MessageKind::GossipPush, MessageKind::GossipPull])
    }

    /// Difference `self - earlier`, element-wise. Useful for per-round
    /// deltas from cumulative counters.
    ///
    /// # Panics
    /// Panics (in debug builds) if any counter would go negative.
    pub fn since(&self, earlier: &MsgCounts) -> MsgCounts {
        let mut out = MsgCounts::new();
        for i in 0..MessageKind::COUNT {
            debug_assert!(self.counts[i] >= earlier.counts[i]);
            out.counts[i] = self.counts[i] - earlier.counts[i];
        }
        out
    }

    /// Iterates `(kind, count)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (MessageKind, u64)> + '_ {
        MessageKind::ALL.iter().map(move |&k| (k, self.counts[k as usize]))
    }

    /// Resets all counters to zero.
    pub fn clear(&mut self) {
        self.counts = [0; MessageKind::COUNT];
    }
}

impl Index<MessageKind> for MsgCounts {
    type Output = u64;
    #[inline]
    fn index(&self, k: MessageKind) -> &u64 {
        &self.counts[k as usize]
    }
}

impl IndexMut<MessageKind> for MsgCounts {
    #[inline]
    fn index_mut(&mut self, k: MessageKind) -> &mut u64 {
        &mut self.counts[k as usize]
    }
}

impl AddAssign for MsgCounts {
    fn add_assign(&mut self, rhs: MsgCounts) {
        for i in 0..MessageKind::COUNT {
            self.counts[i] += rhs.counts[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_every_variant_once() {
        let mut seen = std::collections::HashSet::new();
        for k in MessageKind::ALL {
            assert!(seen.insert(k as usize), "duplicate variant {k}");
        }
        assert_eq!(seen.len(), MessageKind::COUNT);
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<&str> =
            MessageKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), MessageKind::COUNT);
    }

    #[test]
    fn counting_and_totals() {
        let mut c = MsgCounts::new();
        c.incr(MessageKind::RouteHop);
        c.add(MessageKind::RouteHop, 2);
        c.add(MessageKind::FloodStep, 10);
        c.incr(MessageKind::Probe);
        assert_eq!(c[MessageKind::RouteHop], 3);
        assert_eq!(c.total(), 14);
        assert_eq!(c.unstructured_total(), 10);
        assert_eq!(c.maintenance_total(), 1);
        assert_eq!(c.index_search_total(), 3);
        assert_eq!(c.update_total(), 0);
    }

    #[test]
    fn category_totals_partition_the_grand_total() {
        let mut c = MsgCounts::new();
        for (i, k) in MessageKind::ALL.into_iter().enumerate() {
            c.add(k, (i as u64 + 1) * 7);
        }
        let partition = c.index_search_total()
            + c.unstructured_total()
            + c.maintenance_total()
            + c.update_total();
        assert_eq!(partition, c.total(), "categories must partition all kinds");
    }

    #[test]
    fn since_computes_deltas() {
        let mut a = MsgCounts::new();
        a.add(MessageKind::Probe, 5);
        let mut b = a;
        b.add(MessageKind::Probe, 3);
        b.add(MessageKind::WalkStep, 2);
        let d = b.since(&a);
        assert_eq!(d[MessageKind::Probe], 3);
        assert_eq!(d[MessageKind::WalkStep], 2);
        assert_eq!(d.total(), 5);
    }

    #[test]
    fn add_assign_merges() {
        let mut a = MsgCounts::new();
        a.add(MessageKind::GossipPush, 4);
        let mut b = MsgCounts::new();
        b.add(MessageKind::GossipPush, 6);
        b.add(MessageKind::GossipPull, 1);
        a += b;
        assert_eq!(a[MessageKind::GossipPush], 10);
        assert_eq!(a[MessageKind::GossipPull], 1);
    }

    #[test]
    fn clear_resets() {
        let mut a = MsgCounts::new();
        a.add(MessageKind::Membership, 9);
        a.clear();
        assert_eq!(a.total(), 0);
    }
}
