//! Peer identifiers and liveness status.

use std::fmt;

/// A dense peer identifier.
///
/// Peers are stored in flat vectors throughout the simulators, so the id is a
/// plain index. `u32` keeps hot structures small (the paper's largest
/// scenario has 20 000 peers; `u32` leaves ample headroom).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub u32);

impl PeerId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// Builds a `PeerId` from a `usize` index.
    ///
    /// # Panics
    /// Panics if `i` does not fit in `u32`.
    #[inline]
    pub fn from_idx(i: usize) -> Self {
        PeerId(u32::try_from(i).expect("peer index exceeds u32"))
    }
}

impl fmt::Debug for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer#{}", self.0)
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer#{}", self.0)
    }
}

impl From<u32> for PeerId {
    fn from(v: u32) -> Self {
        PeerId(v)
    }
}

/// Liveness of a peer in the churn model.
///
/// Peers alternate between online sessions and offline periods; the overlay
/// maintenance layer probes routing entries to detect [`PeerStatus::Offline`]
/// peers (Section 3.3.1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum PeerStatus {
    /// The peer participates in overlays and answers queries.
    #[default]
    Online,
    /// The peer is temporarily disconnected; its state is retained and it
    /// pulls missed updates when it returns (the \[DaHa03\] model).
    Offline,
}

impl PeerStatus {
    /// `true` if the peer is currently online.
    #[inline]
    pub fn is_online(self) -> bool {
        matches!(self, PeerStatus::Online)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_id_roundtrips_through_index() {
        for i in [0usize, 1, 41, 19_999, u32::MAX as usize] {
            assert_eq!(PeerId::from_idx(i).idx(), i);
        }
    }

    #[test]
    #[should_panic(expected = "peer index exceeds u32")]
    fn peer_id_rejects_oversized_index() {
        let _ = PeerId::from_idx(u32::MAX as usize + 1);
    }

    #[test]
    fn peer_id_formats_compactly() {
        assert_eq!(format!("{}", PeerId(7)), "peer#7");
        assert_eq!(format!("{:?}", PeerId(7)), "peer#7");
    }

    #[test]
    fn status_defaults_to_online() {
        assert!(PeerStatus::default().is_online());
        assert!(!PeerStatus::Offline.is_online());
    }
}
