//! Deterministic random-number streams.
//!
//! Every experiment must be reproducible from a single seed, yet components
//! (churn, workload, overlay, gossip, …) must not perturb each other's
//! randomness when one of them draws more numbers. [`RngStreams`] derives an
//! independent `SmallRng` per named component with a SplitMix64 step over the
//! master seed mixed with the component label, which is the standard way to
//! fork statistically independent streams.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 — used only for seed derivation, never for the streams
/// themselves.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One SplitMix64-mixed value from `(seed, salt)` — for deriving fixed,
/// deterministic per-entity values (e.g. a peer's scheduling offset)
/// without consuming any component stream. Same mixing as the stream
/// derivation above, so there is exactly one splitmix definition to keep
/// bit-stable.
pub fn mix64(seed: u64, salt: u64) -> u64 {
    let mut state = seed ^ salt.wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    splitmix64(&mut state)
}

/// Factory for named, independent random streams.
#[derive(Clone, Debug)]
pub struct RngStreams {
    master: u64,
}

impl RngStreams {
    /// Creates a factory from the experiment's master seed.
    pub fn new(master_seed: u64) -> Self {
        RngStreams { master: master_seed }
    }

    /// The master seed (for logging/reporting).
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Derives the sub-seed for `label`, stable across calls.
    pub fn seed_for(&self, label: &str) -> u64 {
        let mut state = self.master;
        for &b in label.as_bytes() {
            state ^= splitmix64(&mut state) ^ u64::from(b).wrapping_mul(0xff51_afd7_ed55_8ccd);
        }
        splitmix64(&mut state)
    }

    /// A fresh `SmallRng` for `label`; the same `(master, label)` pair always
    /// yields the same stream.
    pub fn stream(&self, label: &str) -> SmallRng {
        SmallRng::seed_from_u64(self.seed_for(label))
    }

    /// A stream parameterized by an index (e.g. one stream per peer).
    pub fn indexed_stream(&self, label: &str, index: u64) -> SmallRng {
        let mut state = self.seed_for(label) ^ index.wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
        SmallRng::seed_from_u64(splitmix64(&mut state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn draws(rng: &mut SmallRng, n: usize) -> Vec<u64> {
        (0..n).map(|_| rng.random::<u64>()).collect()
    }

    #[test]
    fn same_label_same_stream() {
        let s = RngStreams::new(42);
        let a = draws(&mut s.stream("churn"), 8);
        let b = draws(&mut s.stream("churn"), 8);
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let s = RngStreams::new(42);
        let a = draws(&mut s.stream("churn"), 8);
        let b = draws(&mut s.stream("workload"), 8);
        assert_ne!(a, b);
    }

    #[test]
    fn different_master_seeds_differ() {
        let a = draws(&mut RngStreams::new(1).stream("x"), 8);
        let b = draws(&mut RngStreams::new(2).stream("x"), 8);
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_are_independent() {
        let s = RngStreams::new(7);
        let a = draws(&mut s.indexed_stream("peer", 0), 8);
        let b = draws(&mut s.indexed_stream("peer", 1), 8);
        let a2 = draws(&mut s.indexed_stream("peer", 0), 8);
        assert_ne!(a, b);
        assert_eq!(a, a2);
    }

    #[test]
    fn seeds_spread_over_many_indices() {
        let s = RngStreams::new(99);
        let seeds: std::collections::HashSet<u64> =
            (0..10_000u64).map(|i| s.indexed_stream("peer", i).random::<u64>()).collect();
        assert!(seeds.len() > 9_990, "streams should be practically collision-free");
    }
}
