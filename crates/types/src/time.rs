//! Virtual time.
//!
//! The paper measures costs per *round*, one round = one second (Section 2,
//! footnote 1). The simulator uses microsecond-resolution virtual time so
//! sub-round events (individual hops, gossip exchanges) order correctly, and
//! exposes [`Round`] as the reporting granularity.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Microseconds of virtual time since simulation start.
///
/// A `u64` of microseconds covers ~584 000 years of simulated time, far more
/// than any experiment needs, while keeping `Ord` exact (no float ties in the
/// event queue).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// Microseconds per second/round.
const MICROS_PER_SEC: u64 = 1_000_000;

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Builds a time from fractional seconds (rounded to the nearest µs).
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimTime {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimTime((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Builds a time from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Time in microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The round (whole second) this instant falls in.
    #[inline]
    pub const fn round(self) -> Round {
        Round(self.0 / MICROS_PER_SEC)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// A reporting round (one virtual second), per the paper's convention.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Round(pub u64);

impl Round {
    /// Start instant of this round.
    #[inline]
    pub const fn start(self) -> SimTime {
        SimTime::from_secs(self.0)
    }

    /// First instant of the following round.
    #[inline]
    pub const fn end(self) -> SimTime {
        SimTime::from_secs(self.0 + 1)
    }

    /// The next round.
    #[inline]
    pub const fn next(self) -> Round {
        Round(self.0 + 1)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "round {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_secs(3).as_secs_f64(), 3.0);
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_micros(250).as_micros(), 250);
    }

    #[test]
    fn rounds_bucket_by_second() {
        assert_eq!(SimTime::from_secs_f64(0.999_999).round(), Round(0));
        assert_eq!(SimTime::from_secs(1).round(), Round(1));
        assert_eq!(SimTime::from_secs_f64(59.2).round(), Round(59));
    }

    #[test]
    fn round_bounds_are_half_open() {
        let r = Round(7);
        assert_eq!(r.start(), SimTime::from_secs(7));
        assert_eq!(r.end(), SimTime::from_secs(8));
        assert_eq!(r.start().round(), r);
        assert_eq!(r.end().round(), r.next());
    }

    #[test]
    fn arithmetic_behaves() {
        let a = SimTime::from_secs(2);
        let b = SimTime::from_secs_f64(0.5);
        assert_eq!((a + b).as_secs_f64(), 2.5);
        assert_eq!((a - b).as_secs_f64(), 1.5);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.as_secs_f64(), 2.5);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_rejected() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_is_total_and_exact() {
        let times = [
            SimTime::from_micros(0),
            SimTime::from_micros(1),
            SimTime::from_micros(999_999),
            SimTime::from_secs(1),
        ];
        for w in times.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
