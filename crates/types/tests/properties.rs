//! Property tests for the key-space primitives and message accounting.

use pdht_types::{Key, MessageKind, MsgCounts, KEY_BITS};
use proptest::prelude::*;

proptest! {
    /// A prefix built from any key contains that key, and its min/max keys
    /// bound exactly the contained range.
    #[test]
    fn prefix_contains_its_source_key(bits in any::<u64>(), len in 0u32..=64) {
        let key = Key(bits);
        let p = key.prefix(len);
        prop_assert!(p.contains(key));
        prop_assert!(p.min_key() <= key && key <= p.max_key());
        prop_assert!(p.contains(p.min_key()));
        prop_assert!(p.contains(p.max_key()));
    }

    /// Sibling prefixes are disjoint and jointly cover the parent.
    #[test]
    fn sibling_partition(bits in any::<u64>(), len in 1u32..=64) {
        let p = Key(bits).prefix(len);
        let s = p.sibling();
        prop_assert_eq!(s.sibling(), p, "sibling is an involution");
        // Disjoint:
        prop_assert!(!s.contains(p.min_key()));
        prop_assert!(!p.contains(s.min_key()));
        // Cover the parent: the parent's range size equals the two halves.
        let parent = p.parent();
        prop_assert!(parent.contains(p.min_key()));
        prop_assert!(parent.contains(s.max_key()));
        prop_assert_eq!(parent.min_key(), p.min_key().min(s.min_key()));
        prop_assert_eq!(parent.max_key(), p.max_key().max(s.max_key()));
    }

    /// child(bit) then parent() is the identity; the child range halves.
    #[test]
    fn child_parent_roundtrip(bits in any::<u64>(), len in 0u32..64, bit in any::<bool>()) {
        let p = Key(bits).prefix(len);
        let c = p.child(bit);
        prop_assert_eq!(c.parent(), p);
        prop_assert_eq!(c.len(), len + 1);
        prop_assert!(p.is_prefix_of(c));
        prop_assert!(!c.is_prefix_of(p) || c == p);
    }

    /// `common_prefix_len` agrees with bit-by-bit comparison.
    #[test]
    fn common_prefix_matches_bits(a in any::<u64>(), b in any::<u64>()) {
        let (ka, kb) = (Key(a), Key(b));
        let l = ka.common_prefix_len(kb);
        for i in 0..l.min(KEY_BITS) {
            prop_assert_eq!(ka.bit(i), kb.bit(i));
        }
        if l < KEY_BITS {
            prop_assert_ne!(ka.bit(l), kb.bit(l));
        }
    }

    /// Hashing is deterministic and the finalizer spreads the top bits
    /// (no systematic bias towards either half of the trie).
    #[test]
    fn hash_top_bit_is_balanced(seed in any::<u32>()) {
        let keys: Vec<Key> =
            (0..256u32).map(|i| Key::hash_str(&format!("{seed}-{i}"))).collect();
        let ones = keys.iter().filter(|k| k.bit(0)).count();
        // 256 coin flips: P(outside [64, 192]) < 1e-15.
        prop_assert!((64..=192).contains(&ones), "top-bit count {ones}");
    }

    /// MsgCounts: add then since returns the delta; totals are consistent.
    #[test]
    fn msg_counts_delta_roundtrip(
        adds in prop::collection::vec((0usize..MessageKind::COUNT, 0u64..1000), 0..32)
    ) {
        let mut base = MsgCounts::new();
        base.add(MessageKind::Probe, 5);
        let snapshot = base;
        let mut sum = 0u64;
        for (ki, n) in adds {
            base.add(MessageKind::ALL[ki], n);
            sum += n;
        }
        let delta = base.since(&snapshot);
        prop_assert_eq!(delta.total(), sum);
        prop_assert_eq!(base.total(), snapshot.total() + sum);
    }
}
