//! The unstructured ("Gnutella-like") overlay and its search algorithms.
//!
//! The paper's broadcast-search cost model (Eq. 6) abstracts an unstructured
//! network in which content is replicated at `repl` random peers and a
//! search visits `numPeers/repl` peers on average, with a message
//! duplication factor `dup ≈ 1.8` (\[LvCa02\]). This crate builds the real
//! thing:
//!
//! * [`Topology`] — connected random graphs with configurable degree
//!   (uniform or power-law-ish), the shape Gnutella measurements report,
//! * [`Replication`] — random placement of `repl` copies per item,
//! * [`search`] — TTL-bounded flooding and k-random-walk search
//!   (\[LvCa02\]'s recommendation), both counting every transmitted copy so
//!   the measured duplication factor is an *output* the experiments compare
//!   against the model's `dup` input.

pub mod replicate;
pub mod search;
pub mod topology;

pub use replicate::Replication;
pub use search::{flood, random_walks, RandomWalk, SearchOutcome, WalkWave};
pub use topology::Topology;
