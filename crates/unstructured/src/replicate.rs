//! Random replication of items across peers.
//!
//! "we replicate keys with a certain factor at random peers" (Section 3.1).
//! Index and content use the same factor "to assure the same search
//! reliability in structured and unstructured networks" (Section 4).

use pdht_types::{PdhtError, PeerId, Result};
use rand::rngs::SmallRng;
use rand::Rng;

/// Placement of `repl` copies of each item at random distinct peers.
#[derive(Clone, Debug)]
pub struct Replication {
    /// `holders[item]` = sorted peer ids holding a copy.
    holders: Vec<Vec<PeerId>>,
    num_peers: usize,
}

impl Replication {
    /// Places `num_items` items, `repl` copies each, across `num_peers`
    /// peers uniformly at random (distinct holders per item).
    ///
    /// # Errors
    /// Fails if `repl == 0` or `repl > num_peers`.
    pub fn place(
        num_items: usize,
        repl: usize,
        num_peers: usize,
        rng: &mut SmallRng,
    ) -> Result<Replication> {
        if repl == 0 {
            return Err(PdhtError::InvalidConfig {
                param: "repl",
                reason: "replication factor must be >= 1".into(),
            });
        }
        if repl > num_peers {
            return Err(PdhtError::InvalidConfig {
                param: "repl",
                reason: format!("cannot place {repl} copies on {num_peers} peers"),
            });
        }
        let mut holders = Vec::with_capacity(num_items);
        // Floyd's algorithm for sampling `repl` distinct values without
        // building a full permutation per item.
        let mut picked = pdht_types::fasthash::set_with_capacity::<u32>(repl * 2);
        for _ in 0..num_items {
            picked.clear();
            for j in (num_peers - repl)..num_peers {
                let t = rng.random_range(0..=j as u32);
                let chosen = if picked.contains(&t) { j as u32 } else { t };
                picked.insert(chosen);
            }
            let mut set: Vec<PeerId> = picked.iter().map(|&p| PeerId(p)).collect();
            set.sort_unstable();
            holders.push(set);
        }
        Ok(Replication { holders, num_peers })
    }

    /// Number of items placed.
    pub fn num_items(&self) -> usize {
        self.holders.len()
    }

    /// The peers holding `item`.
    ///
    /// # Panics
    /// Panics if `item` is out of range.
    pub fn holders(&self, item: usize) -> &[PeerId] {
        &self.holders[item]
    }

    /// Does `peer` hold `item`?
    pub fn is_holder(&self, item: usize, peer: PeerId) -> bool {
        self.holders[item].binary_search(&peer).is_ok()
    }

    /// Re-places a single item (models content turnover: a replaced article
    /// is published to fresh random peers).
    pub fn replace_item(&mut self, item: usize, rng: &mut SmallRng) {
        let repl = self.holders[item].len();
        let mut set = Vec::with_capacity(repl);
        let mut picked = pdht_types::fasthash::set_with_capacity::<u32>(repl * 2);
        for j in (self.num_peers - repl)..self.num_peers {
            let t = rng.random_range(0..=j as u32);
            let chosen = if picked.contains(&t) { j as u32 } else { t };
            picked.insert(chosen);
        }
        set.extend(picked.iter().map(|&p| PeerId(p)));
        set.sort_unstable();
        self.holders[item] = set;
    }

    /// Mean number of items held per peer (storage-load diagnostic).
    pub fn mean_load(&self) -> f64 {
        let total: usize = self.holders.iter().map(Vec::len).sum();
        total as f64 / self.num_peers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(77)
    }

    #[test]
    fn every_item_gets_distinct_holders() {
        let r = Replication::place(500, 50, 2_000, &mut rng()).unwrap();
        assert_eq!(r.num_items(), 500);
        for item in 0..500 {
            let h = r.holders(item);
            assert_eq!(h.len(), 50);
            let mut dedup = h.to_vec();
            dedup.dedup();
            assert_eq!(dedup.len(), 50, "holders must be distinct");
            for &p in h {
                assert!(r.is_holder(item, p));
                assert!(p.idx() < 2_000);
            }
        }
    }

    #[test]
    fn load_is_balanced_on_average() {
        let r = Replication::place(1_000, 20, 1_000, &mut rng()).unwrap();
        // 1000 items · 20 copies / 1000 peers = 20 per peer on average.
        assert!((r.mean_load() - 20.0).abs() < 1e-9);
        // And the max load is within a few standard deviations (binomial).
        let mut counts = vec![0usize; 1_000];
        for item in 0..1_000 {
            for &p in r.holders(item) {
                counts[p.idx()] += 1;
            }
        }
        let max = *counts.iter().max().unwrap();
        assert!(max < 45, "max load {max} suspiciously unbalanced");
    }

    #[test]
    fn is_holder_negative_case() {
        let r = Replication::place(5, 3, 100, &mut rng()).unwrap();
        for item in 0..5 {
            let holder_count = (0..100).filter(|&i| r.is_holder(item, PeerId(i))).count();
            assert_eq!(holder_count, 3);
        }
    }

    #[test]
    fn replace_item_moves_copies() {
        let mut r = Replication::place(10, 10, 5_000, &mut rng()).unwrap();
        let before = r.holders(3).to_vec();
        let mut moved = false;
        // With 10 copies over 5000 peers, a re-placement virtually always
        // changes the holder set; try a few times to be safe.
        for _ in 0..5 {
            r.replace_item(3, &mut rng());
            if r.holders(3) != before.as_slice() {
                moved = true;
                break;
            }
        }
        assert!(moved, "replacement should change holders");
        assert_eq!(r.holders(3).len(), 10);
    }

    #[test]
    fn full_replication_covers_all_peers() {
        let r = Replication::place(2, 10, 10, &mut rng()).unwrap();
        for item in 0..2 {
            assert_eq!(r.holders(item).len(), 10);
        }
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(Replication::place(5, 0, 10, &mut rng()).is_err());
        assert!(Replication::place(5, 11, 10, &mut rng()).is_err());
    }
}
