//! Search in the unstructured overlay: TTL flooding and k-random-walks.
//!
//! Both algorithms count **every transmitted copy** of the query — including
//! copies delivered to peers that already saw it — because those duplicates
//! are exactly the `dup` factor of the paper's Eq. 6. Flooding is the
//! Gnutella baseline; multiple random walks are the cheaper alternative the
//! paper assumes (\[LvCa02\]).

use crate::topology::Topology;
use pdht_sim::{Metrics, VisitSet};
use pdht_types::{Liveness, MessageKind, PeerId};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::VecDeque;

/// Result of an unstructured search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchOutcome {
    /// The first holder reached, if any.
    pub found: Option<PeerId>,
    /// Total messages sent (all copies, duplicates included).
    pub messages: u64,
    /// Distinct online peers that processed the query.
    pub peers_visited: usize,
}

impl SearchOutcome {
    /// Measured duplication factor: messages per distinct peer reached
    /// (the empirical analogue of the model's `dup`).
    pub fn duplication_factor(&self) -> f64 {
        if self.peers_visited == 0 {
            0.0
        } else {
            self.messages as f64 / self.peers_visited as f64
        }
    }
}

/// TTL-bounded flooding from `origin`.
///
/// Every online peer forwards the query to all neighbors except the one it
/// came from; each transmission costs one [`MessageKind::FloodStep`].
/// The search stops expanding at `ttl` hops but keeps counting the frontier
/// messages already in flight. The *first* holder reached (BFS order) is
/// reported.
pub fn flood<F>(
    topo: &Topology,
    origin: PeerId,
    ttl: u32,
    is_holder: F,
    live: &Liveness,
    metrics: &mut Metrics,
) -> SearchOutcome
where
    F: Fn(PeerId) -> bool,
{
    let mut visited = vec![false; topo.len()];
    let mut queue: VecDeque<(PeerId, u32)> = VecDeque::new();
    let mut messages = 0u64;
    let mut peers_visited = 0usize;
    let mut found = None;

    if !live.is_online(origin) {
        return SearchOutcome { found: None, messages: 0, peers_visited: 0 };
    }
    visited[origin.idx()] = true;
    peers_visited += 1;
    if is_holder(origin) {
        return SearchOutcome { found: Some(origin), messages: 0, peers_visited };
    }
    queue.push_back((origin, 0));

    while let Some((peer, depth)) = queue.pop_front() {
        if depth >= ttl {
            continue;
        }
        for &nb in topo.neighbors(peer) {
            // The copy is transmitted regardless of the receiver's state —
            // that is the duplication cost.
            messages += 1;
            metrics.record(MessageKind::FloodStep);
            if !live.is_online(nb) || visited[nb.idx()] {
                continue;
            }
            visited[nb.idx()] = true;
            peers_visited += 1;
            if found.is_none() && is_holder(nb) {
                found = Some(nb);
                // Gnutella floods keep propagating (no global stop signal);
                // we keep expanding to model the true cost.
            }
            queue.push_back((nb, depth + 1));
        }
    }
    SearchOutcome { found, messages, peers_visited }
}

/// Result of one [`RandomWalk::wave`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalkWave {
    /// A walker reached a holder; the search is over.
    Found(PeerId),
    /// Budget exhausted or every walker is stuck; the search failed.
    Exhausted,
    /// Walkers are still in flight; run another wave.
    InProgress,
}

/// A resumable k-random-walk search: the `walkers` tokens advance one step
/// each per [`RandomWalk::wave`] call (walkers are parallel, so one wave is
/// one network-hop of virtual time). Message-granular engines park this
/// state between waves; [`random_walks`] drives it to completion with no
/// inter-wave delay.
///
/// The walk does not own a visited map: the caller threads a shared,
/// engine-owned [`VisitSet`] through [`RandomWalk::begin`] and
/// [`RandomWalk::wave`], and the walk keeps only the generation token of
/// its logical set — starting a query is O(walkers), not O(population).
/// Membership only feeds the distinct-peers-visited statistic (never
/// trajectories, RNG draws, or message counts), so a concurrent walk
/// stamping over an older generation cannot perturb the accounting.
#[derive(Clone, Debug)]
pub struct RandomWalk {
    positions: Vec<PeerId>,
    /// Generation token of this walk's logical set in the shared scratch.
    visited_gen: u32,
    messages: u64,
    peers_visited: usize,
    max_steps: u64,
}

impl RandomWalk {
    /// Starts a walk search from `origin`, opening a fresh generation in
    /// `scratch` (which must span the topology's peer population).
    /// Resolves immediately (`Err(outcome)`) when the origin is offline,
    /// there are no walkers, or the origin itself holds the item.
    ///
    /// # Errors
    /// The `Err` variant *is* the immediately resolved search outcome, not
    /// a failure.
    pub fn begin<F>(
        topo: &Topology,
        origin: PeerId,
        walkers: usize,
        max_steps: u64,
        is_holder: F,
        live: &Liveness,
        scratch: &mut VisitSet,
    ) -> std::result::Result<RandomWalk, SearchOutcome>
    where
        F: Fn(PeerId) -> bool,
    {
        debug_assert!(scratch.len() >= topo.len(), "scratch must span the population");
        if !live.is_online(origin) || walkers == 0 {
            return Err(SearchOutcome { found: None, messages: 0, peers_visited: 0 });
        }
        let visited_gen = scratch.begin();
        scratch.insert(visited_gen, origin.idx());
        if is_holder(origin) {
            return Err(SearchOutcome { found: Some(origin), messages: 0, peers_visited: 1 });
        }
        Ok(RandomWalk {
            positions: vec![origin; walkers],
            visited_gen,
            messages: 0,
            peers_visited: 1,
            max_steps,
        })
    }

    /// One parallel wave: every walker takes one step through the online
    /// subgraph, each costing one [`MessageKind::WalkStep`].
    pub fn wave<F>(
        &mut self,
        topo: &Topology,
        is_holder: F,
        live: &Liveness,
        rng: &mut SmallRng,
        metrics: &mut Metrics,
        scratch: &mut VisitSet,
    ) -> WalkWave
    where
        F: Fn(PeerId) -> bool,
    {
        if self.messages >= self.max_steps {
            return WalkWave::Exhausted;
        }
        // Every walker's position is known up front, so the adjacency rows
        // this wave will touch can start streaming in before the serial
        // per-walker loop reaches them. Each row is a random index into the
        // CSR arrays — without the hint every step pays the full miss.
        for pos in &self.positions {
            topo.prefetch_neighbors(*pos);
        }
        let mut any_alive = false;
        for pos in &mut self.positions {
            if self.messages >= self.max_steps {
                break;
            }
            // Step to a random online neighbor (walkers pass through the
            // online subgraph only — an offline peer cannot forward).
            // Fused count-then-pick: one pass counts the online neighbors
            // while recording where the first PICK_CACHE of them sit, then
            // one uniform draw over that count picks the step — the same
            // single `random_range(0..count)` the old collect-then-choose
            // consumed, with no candidates Vec. Only a hub with more than
            // PICK_CACHE online neighbors ever needs the rescan.
            const PICK_CACHE: usize = 32;
            let neighbors = topo.neighbors(*pos);
            let mut online = 0usize;
            let mut slots = [0u32; PICK_CACHE];
            for (j, &p) in neighbors.iter().enumerate() {
                if live.is_online(p) {
                    if online < PICK_CACHE {
                        slots[online] = j as u32;
                    }
                    online += 1;
                }
            }
            if online == 0 {
                continue; // walker is stuck; others may proceed
            }
            let pick = rng.random_range(0..online);
            let next = if pick < PICK_CACHE {
                neighbors[slots[pick] as usize]
            } else {
                *neighbors
                    .iter()
                    .filter(|&&p| live.is_online(p))
                    .nth(pick)
                    .expect("pick < online count")
            };
            any_alive = true;
            self.messages += 1;
            metrics.record(MessageKind::WalkStep);
            *pos = next;
            if scratch.insert(self.visited_gen, next.idx()) {
                self.peers_visited += 1;
            }
            if is_holder(next) {
                return WalkWave::Found(next);
            }
        }
        if any_alive {
            WalkWave::InProgress
        } else {
            WalkWave::Exhausted
        }
    }

    /// The accumulated outcome, with `found` supplied by the final wave.
    pub fn outcome(&self, found: Option<PeerId>) -> SearchOutcome {
        SearchOutcome { found, messages: self.messages, peers_visited: self.peers_visited }
    }
}

/// k-random-walk search (\[LvCa02\]): `walkers` tokens walk the online
/// subgraph, each step costing one [`MessageKind::WalkStep`]; the search
/// stops as soon as any walker stands on a holder, or when the shared
/// `max_steps` budget is exhausted.
///
/// Convenience driver over [`RandomWalk`] with a locally allocated
/// [`VisitSet`]; engines that issue many searches should own one scratch
/// set and drive [`RandomWalk`] directly.
#[allow(clippy::too_many_arguments)]
pub fn random_walks<F>(
    topo: &Topology,
    origin: PeerId,
    walkers: usize,
    max_steps: u64,
    is_holder: F,
    live: &Liveness,
    rng: &mut SmallRng,
    metrics: &mut Metrics,
) -> SearchOutcome
where
    F: Fn(PeerId) -> bool,
{
    let mut scratch = VisitSet::new(topo.len());
    let mut walk =
        match RandomWalk::begin(topo, origin, walkers, max_steps, &is_holder, live, &mut scratch) {
            Ok(walk) => walk,
            Err(resolved) => return resolved,
        };
    loop {
        match walk.wave(topo, &is_holder, live, rng, metrics, &mut scratch) {
            WalkWave::Found(holder) => return walk.outcome(Some(holder)),
            WalkWave::Exhausted => return walk.outcome(None),
            WalkWave::InProgress => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replicate::Replication;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(31337)
    }

    fn setup(n: usize, repl: usize) -> (Topology, Replication, Liveness) {
        let mut r = rng();
        let topo = Topology::random(n, 5, &mut r).unwrap();
        let repl = Replication::place(20, repl, n, &mut r).unwrap();
        (topo, repl, Liveness::all_online(n))
    }

    #[test]
    fn flood_finds_replicated_items() {
        let (topo, repl, live) = setup(1_000, 20);
        let mut m = Metrics::new();
        let out = flood(&topo, PeerId(0), 16, |p| repl.is_holder(0, p), &live, &mut m);
        assert!(out.found.is_some());
        assert!(repl.is_holder(0, out.found.unwrap()));
        assert!(out.messages > 0);
        assert_eq!(m.totals()[MessageKind::FloodStep], out.messages);
    }

    #[test]
    fn flood_covers_network_and_measures_duplication() {
        let (topo, _, live) = setup(1_000, 20);
        let mut m = Metrics::new();
        // No holder: the flood sweeps the whole graph.
        let out = flood(&topo, PeerId(0), 32, |_| false, &live, &mut m);
        assert!(out.found.is_none());
        assert_eq!(out.peers_visited, 1_000, "flood must reach every online peer");
        // Each peer retransmits to deg-1 neighbors; with mean degree ~5 the
        // duplication factor is well above 1 (the paper uses 1.8 for the
        // walk-based search; raw flooding is worse).
        assert!(out.duplication_factor() > 1.5, "dup = {}", out.duplication_factor());
    }

    #[test]
    fn flood_ttl_bounds_reach() {
        let (topo, _, live) = setup(1_000, 20);
        let mut m = Metrics::new();
        let shallow = flood(&topo, PeerId(0), 2, |_| false, &live, &mut m);
        let deep = flood(&topo, PeerId(0), 8, |_| false, &live, &mut m);
        assert!(shallow.peers_visited < deep.peers_visited);
        assert!(shallow.messages < deep.messages);
    }

    #[test]
    fn flood_skips_offline_regions() {
        let (topo, _, mut live) = setup(300, 5);
        for i in 100..300 {
            live.set(PeerId(i), false);
        }
        let mut m = Metrics::new();
        let out = flood(&topo, PeerId(0), 32, |_| false, &live, &mut m);
        assert!(out.peers_visited <= 100);
    }

    #[test]
    fn flood_from_offline_origin_is_empty() {
        let (topo, _, mut live) = setup(100, 5);
        live.set(PeerId(0), false);
        let mut m = Metrics::new();
        let out = flood(&topo, PeerId(0), 8, |_| true, &live, &mut m);
        assert_eq!(out, SearchOutcome { found: None, messages: 0, peers_visited: 0 });
    }

    #[test]
    fn walks_find_replicated_items_cheaper_than_flooding() {
        let (topo, repl, live) = setup(2_000, 100);
        let mut r = rng();
        let mut m = Metrics::new();
        let walk = random_walks(
            &topo,
            PeerId(0),
            16,
            50_000,
            |p| repl.is_holder(1, p),
            &live,
            &mut r,
            &mut m,
        );
        assert!(walk.found.is_some());
        assert!(repl.is_holder(1, walk.found.unwrap()));
        let mut m2 = Metrics::new();
        let fl = flood(&topo, PeerId(0), 32, |p| repl.is_holder(1, p), &live, &mut m2);
        assert!(
            walk.messages < fl.messages,
            "walks ({}) should beat flooding ({})",
            walk.messages,
            fl.messages
        );
    }

    #[test]
    fn walk_cost_scales_with_inverse_replication() {
        // Eq. 6: cost ∝ numPeers/repl. Compare repl = 200 vs repl = 50 on
        // the same 2000-peer graph: the sparser item must cost roughly 4×
        // more (within stochastic slack, averaged over queries).
        let mut r = rng();
        let topo = Topology::random(2_000, 5, &mut r).unwrap();
        let live = Liveness::all_online(2_000);
        let dense = Replication::place(8, 200, 2_000, &mut r).unwrap();
        let sparse = Replication::place(8, 50, 2_000, &mut r).unwrap();
        let mut m = Metrics::new();
        let avg = |repl: &Replication, r: &mut SmallRng, m: &mut Metrics| -> f64 {
            let mut total = 0u64;
            let runs = 60;
            for i in 0..runs {
                let out = random_walks(
                    &topo,
                    PeerId((i * 31) % 2_000),
                    16,
                    200_000,
                    |p| repl.is_holder((i % 8) as usize, p),
                    &live,
                    r,
                    m,
                );
                assert!(out.found.is_some());
                total += out.messages;
            }
            total as f64 / f64::from(runs)
        };
        let cost_dense = avg(&dense, &mut r, &mut m);
        let cost_sparse = avg(&sparse, &mut r, &mut m);
        let ratio = cost_sparse / cost_dense;
        assert!(
            (2.0..8.0).contains(&ratio),
            "4× sparser replication should cost ~4× more, got {ratio:.2} ({cost_dense:.0} vs {cost_sparse:.0})"
        );
    }

    #[test]
    fn walks_give_up_on_missing_items() {
        let (topo, _, live) = setup(500, 5);
        let mut r = rng();
        let mut m = Metrics::new();
        let out = random_walks(&topo, PeerId(0), 8, 5_000, |_| false, &live, &mut r, &mut m);
        assert!(out.found.is_none());
        assert_eq!(out.messages, 5_000, "budget must be fully consumed");
    }

    #[test]
    fn walkers_survive_offline_patches() {
        let (topo, repl, mut live) = setup(1_000, 50);
        let mut r = SmallRng::seed_from_u64(0xabc);
        for i in 0..1_000 {
            if rand::Rng::random::<f64>(&mut r) < 0.3 {
                live.set(PeerId(i), false);
            }
        }
        // Ensure origin online.
        live.set(PeerId(0), true);
        let mut m = Metrics::new();
        let mut found = 0;
        for item in 0..20 {
            let holder_online = repl.holders(item).iter().any(|&h| live.is_online(h));
            if !holder_online {
                continue;
            }
            let out = random_walks(
                &topo,
                PeerId(0),
                16,
                100_000,
                |p| repl.is_holder(item, p) && live.is_online(p),
                &live,
                &mut r,
                &mut m,
            );
            if out.found.is_some() {
                found += 1;
            }
        }
        assert!(found >= 18, "search should find online items under churn, found {found}");
    }

    #[test]
    fn zero_walkers_do_nothing() {
        let (topo, _, live) = setup(100, 5);
        let mut r = rng();
        let mut m = Metrics::new();
        let out = random_walks(&topo, PeerId(0), 0, 1_000, |_| true, &live, &mut r, &mut m);
        assert!(out.found.is_none());
        assert_eq!(out.messages, 0);
    }

    #[test]
    fn origin_holding_item_is_free() {
        let (topo, _, live) = setup(100, 5);
        let mut r = rng();
        let mut m = Metrics::new();
        let out = random_walks(&topo, PeerId(7), 4, 100, |p| p == PeerId(7), &live, &mut r, &mut m);
        assert_eq!(out.found, Some(PeerId(7)));
        assert_eq!(out.messages, 0);
        let fl = flood(&topo, PeerId(7), 4, |p| p == PeerId(7), &live, &mut m);
        assert_eq!(fl.found, Some(PeerId(7)));
        assert_eq!(fl.messages, 0);
    }
}
