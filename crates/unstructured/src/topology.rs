//! Random overlay graphs.
//!
//! Gnutella-like topologies: every peer keeps "a few open connections to
//! other peers" (paper Section 3.1). Construction guarantees connectivity
//! (a random Hamiltonian backbone) and then adds random edges to reach the
//! target mean degree; an optional preferential-attachment mode yields the
//! heavy-tailed degree distributions measured on real Gnutella.

use pdht_types::{PdhtError, PeerId, Result};
use rand::rngs::SmallRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::Rng;

/// An undirected overlay graph over a dense peer population.
#[derive(Clone, Debug)]
pub struct Topology {
    adj: Vec<Vec<PeerId>>,
    edges: usize,
    /// The edge count construction aimed for (== `edges` unless the
    /// retry budget ran out; see [`Topology::edge_shortfall`]).
    target_edges: usize,
}

/// Multiple of the *expected* rejection-sampling cost granted per
/// still-missing edge in [`Topology::random`]. A uniform pair hits a free
/// edge with probability `2·free/n²`, so the expected draws per edge is
/// `n²/(2·free)`; granting 32× that makes the per-edge give-up probability
/// ~e⁻³² — the budget is re-granted on every success, so the loop cannot
/// give up because an easy early phase spent a fixed global guard (the bug
/// that silently undershot dense targets).
const EDGE_RETRY_FACTOR: usize = 32;

impl Topology {
    /// A connected random graph with mean degree ≈ `mean_degree`.
    ///
    /// A random cycle backbone guarantees connectivity; the remaining edge
    /// budget is spent on uniformly random pairs (deduplicated). Targets
    /// denser than the complete graph are clamped to it; the achieved
    /// density is surfaced by [`Topology::mean_degree`] and
    /// [`Topology::edge_shortfall`].
    ///
    /// # Errors
    /// Fails if `n < 2` or `mean_degree < 2`.
    pub fn random(n: usize, mean_degree: usize, rng: &mut SmallRng) -> Result<Topology> {
        if n < 2 {
            return Err(PdhtError::InvalidConfig {
                param: "n",
                reason: "need at least two peers".into(),
            });
        }
        if mean_degree < 2 {
            return Err(PdhtError::InvalidConfig {
                param: "mean_degree",
                reason: "mean degree must be at least 2 for connectivity".into(),
            });
        }
        let mut topo = Topology { adj: vec![Vec::new(); n], edges: 0, target_edges: 0 };

        // Random cycle backbone.
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        for i in 0..n {
            let a = order[i];
            let b = order[(i + 1) % n];
            topo.add_edge(a, b);
        }

        // Extra random edges until the mean degree target is met. The
        // retry budget tracks the expected rejection cost of the *next*
        // edge and is re-granted on every success (draw-for-draw identical
        // to the old fixed-guard loop until the moment that guard tripped).
        let max_edges = n * (n - 1) / 2;
        let target_edges = (n * mean_degree / 2).min(max_edges).max(topo.edges);
        topo.target_edges = target_edges;
        let next_edge_budget =
            |edges: usize| EDGE_RETRY_FACTOR * (n * n / (2 * (max_edges - edges)) + 1);
        let mut attempts_left =
            if topo.edges < target_edges { next_edge_budget(topo.edges) } else { 0 };
        while topo.edges < target_edges && attempts_left > 0 {
            attempts_left -= 1;
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            if a != b && topo.add_edge(a, b) && topo.edges < target_edges {
                attempts_left = attempts_left.max(next_edge_budget(topo.edges));
            }
        }
        Ok(topo)
    }

    /// A preferential-attachment graph (Barabási–Albert flavour): each new
    /// peer attaches to `m` existing peers chosen proportionally to degree.
    /// Produces the heavy-tailed degree distributions observed on Gnutella.
    ///
    /// # Errors
    /// Fails if `n < 2` or `m == 0`.
    pub fn preferential(n: usize, m: usize, rng: &mut SmallRng) -> Result<Topology> {
        if n < 2 {
            return Err(PdhtError::InvalidConfig {
                param: "n",
                reason: "need at least two peers".into(),
            });
        }
        if m == 0 {
            return Err(PdhtError::InvalidConfig {
                param: "m",
                reason: "each peer must attach somewhere".into(),
            });
        }
        let mut topo = Topology { adj: vec![Vec::new(); n], edges: 0, target_edges: 0 };
        // Endpoint pool: each edge contributes both endpoints, so sampling
        // uniformly from the pool is degree-proportional sampling.
        let mut pool: Vec<usize> = Vec::with_capacity(2 * n * m);
        topo.add_edge(0, 1);
        pool.extend_from_slice(&[0, 1]);
        for v in 2..n {
            let mut attached = 0usize;
            let mut guard = 0usize;
            while attached < m.min(v) && guard < 50 * m {
                guard += 1;
                let &t = pool.as_slice().choose(rng).expect("pool non-empty");
                if t != v && topo.add_edge(v, t) {
                    pool.extend_from_slice(&[v, t]);
                    attached += 1;
                }
            }
            // Fallback so the graph stays connected even under collisions.
            if attached == 0 {
                topo.add_edge(v, v - 1);
                pool.extend_from_slice(&[v, v - 1]);
            }
        }
        topo.target_edges = topo.edges;
        Ok(topo)
    }

    /// Edges [`Topology::random`] aimed for but could not place before its
    /// retry budget ran out (0 for every reachable target — the regression
    /// tests pin this at high density).
    pub fn edge_shortfall(&self) -> usize {
        self.target_edges - self.edges
    }

    /// Adds the undirected edge `(a, b)` if absent; returns whether added.
    fn add_edge(&mut self, a: usize, b: usize) -> bool {
        debug_assert_ne!(a, b);
        let pb = PeerId::from_idx(b);
        if self.adj[a].contains(&pb) {
            return false;
        }
        self.adj[a].push(pb);
        self.adj[b].push(PeerId::from_idx(a));
        self.edges += 1;
        true
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// `true` if the graph has no peers.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.edges as f64 / self.adj.len() as f64
        }
    }

    /// Neighbors of `peer`.
    #[inline]
    pub fn neighbors(&self, peer: PeerId) -> &[PeerId] {
        &self.adj[peer.idx()]
    }

    /// Is the whole graph connected? (BFS; test/diagnostic helper.)
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for &nb in &self.adj[v] {
                if !seen[nb.idx()] {
                    seen[nb.idx()] = true;
                    count += 1;
                    stack.push(nb.idx());
                }
            }
        }
        count == self.adj.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(2024)
    }

    #[test]
    fn random_graph_is_connected_with_target_degree() {
        let t = Topology::random(2_000, 6, &mut rng()).unwrap();
        assert!(t.is_connected());
        assert!((t.mean_degree() - 6.0).abs() < 0.5, "mean degree {}", t.mean_degree());
        assert_eq!(t.len(), 2_000);
    }

    #[test]
    fn adjacency_is_symmetric_and_simple() {
        let t = Topology::random(500, 5, &mut rng()).unwrap();
        for i in 0..500 {
            let me = PeerId::from_idx(i);
            for &nb in t.neighbors(me) {
                assert_ne!(nb, me, "no self-loops");
                assert!(t.neighbors(nb).contains(&me), "edges must be symmetric");
            }
            // No duplicate neighbor entries.
            let mut sorted: Vec<_> = t.neighbors(me).to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), t.neighbors(me).len());
        }
    }

    #[test]
    fn preferential_graph_is_connected_and_heavy_tailed() {
        let t = Topology::preferential(2_000, 3, &mut rng()).unwrap();
        assert!(t.is_connected());
        let mut degrees: Vec<usize> =
            (0..2_000).map(|i| t.neighbors(PeerId::from_idx(i)).len()).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        // Heavy tail: the top hub has far more links than the median peer.
        assert!(
            degrees[0] >= 5 * degrees[1000].max(1),
            "hub degree {} vs median {}",
            degrees[0],
            degrees[1000]
        );
    }

    #[test]
    fn dense_targets_are_met_not_silently_undershot() {
        // At high density most uniform pairs collide with existing edges;
        // the old fixed global retry guard gave up early and silently
        // delivered a sparser graph. The proportional budget must deliver
        // the full target (shortfall 0) right up to the complete graph.
        for (n, deg) in [(100usize, 80usize), (200, 150), (64, 63), (40, 39)] {
            let t = Topology::random(n, deg, &mut rng()).unwrap();
            assert_eq!(
                t.edge_shortfall(),
                0,
                "n={n}, deg={deg}: undershot by {} edges",
                t.edge_shortfall()
            );
            assert_eq!(t.num_edges(), n * deg / 2, "n={n}, deg={deg}");
            assert!((t.mean_degree() - deg as f64).abs() < 1.0);
            assert!(t.is_connected());
        }
    }

    #[test]
    fn impossible_targets_clamp_to_the_complete_graph() {
        // Denser than complete: the target is clamped, the achieved degree
        // is surfaced, and construction still terminates.
        let n = 30;
        let t = Topology::random(n, 100, &mut rng()).unwrap();
        assert_eq!(t.num_edges(), n * (n - 1) / 2, "must build the complete graph");
        assert_eq!(t.edge_shortfall(), 0);
        assert!((t.mean_degree() - (n - 1) as f64).abs() < 1e-9);
    }

    #[test]
    fn tiny_graphs_work() {
        let t = Topology::random(2, 2, &mut rng()).unwrap();
        assert!(t.is_connected());
        assert_eq!(t.neighbors(PeerId(0)), &[PeerId(1)]);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(Topology::random(1, 4, &mut rng()).is_err());
        assert!(Topology::random(10, 1, &mut rng()).is_err());
        assert!(Topology::preferential(1, 2, &mut rng()).is_err());
        assert!(Topology::preferential(10, 0, &mut rng()).is_err());
    }

    #[test]
    fn determinism_from_seed() {
        let a = Topology::random(300, 4, &mut SmallRng::seed_from_u64(5)).unwrap();
        let b = Topology::random(300, 4, &mut SmallRng::seed_from_u64(5)).unwrap();
        for i in 0..300 {
            assert_eq!(a.neighbors(PeerId::from_idx(i)), b.neighbors(PeerId::from_idx(i)));
        }
    }
}
