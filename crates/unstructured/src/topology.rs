//! Random overlay graphs.
//!
//! Gnutella-like topologies: every peer keeps "a few open connections to
//! other peers" (paper Section 3.1). Construction guarantees connectivity
//! (a random Hamiltonian backbone) and then adds random edges to reach the
//! target mean degree; an optional preferential-attachment mode yields the
//! heavy-tailed degree distributions measured on real Gnutella.

use pdht_types::{PdhtError, PeerId, Result};
use rand::rngs::SmallRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::Rng;

/// An undirected overlay graph over a dense peer population.
///
/// Stored in compressed-sparse-row form: one flat `targets` array holding
/// every adjacency list back to back, indexed by `offsets` (`n + 1`
/// entries). Walk and flood inner loops read one contiguous slice per
/// visited peer instead of chasing a per-node heap pointer — at 10⁵ peers
/// the per-node `Vec<Vec<_>>` layout was the dominant cache miss in the
/// query phase. Construction still goes through an ordinary adjacency-list
/// builder (identical RNG draws), then flattens once; the graph never
/// mutates afterwards except [`Topology::truncate`], which compacts the
/// flat arrays in place.
#[derive(Clone, Debug)]
pub struct Topology {
    /// `targets[offsets[i] as usize .. offsets[i + 1] as usize]` are the
    /// neighbors of peer `i`, in insertion order.
    offsets: Vec<u32>,
    targets: Vec<PeerId>,
    edges: usize,
    /// The edge count construction aimed for (== `edges` unless the
    /// retry budget ran out; see [`Topology::edge_shortfall`]).
    target_edges: usize,
}

/// Adjacency-list accumulator used during construction only. Keeping the
/// build path on `Vec<Vec<PeerId>>` preserves the exact insertion order
/// (and thus the RNG draw sequence of every traversal downstream); the
/// final [`Builder::finish`] flattens into CSR without reordering.
struct Builder {
    adj: Vec<Vec<PeerId>>,
    edges: usize,
}

impl Builder {
    fn new(n: usize) -> Builder {
        Builder { adj: vec![Vec::new(); n], edges: 0 }
    }

    /// Adds the undirected edge `(a, b)` if absent; returns whether added.
    fn add_edge(&mut self, a: usize, b: usize) -> bool {
        debug_assert_ne!(a, b);
        let pb = PeerId::from_idx(b);
        if self.adj[a].contains(&pb) {
            return false;
        }
        self.adj[a].push(pb);
        self.adj[b].push(PeerId::from_idx(a));
        self.edges += 1;
        true
    }

    fn finish(self, target_edges: usize) -> Topology {
        let mut offsets = Vec::with_capacity(self.adj.len() + 1);
        let mut targets = Vec::with_capacity(2 * self.edges);
        offsets.push(0u32);
        for nbs in &self.adj {
            targets.extend_from_slice(nbs);
            offsets.push(targets.len() as u32);
        }
        Topology { offsets, targets, edges: self.edges, target_edges }
    }
}

/// Multiple of the *expected* rejection-sampling cost granted per
/// still-missing edge in [`Topology::random`]. A uniform pair hits a free
/// edge with probability `2·free/n²`, so the expected draws per edge is
/// `n²/(2·free)`; granting 32× that makes the per-edge give-up probability
/// ~e⁻³² — the budget is re-granted on every success, so the loop cannot
/// give up because an easy early phase spent a fixed global guard (the bug
/// that silently undershot dense targets).
const EDGE_RETRY_FACTOR: usize = 32;

impl Topology {
    /// A connected random graph with mean degree ≈ `mean_degree`.
    ///
    /// A random cycle backbone guarantees connectivity; the remaining edge
    /// budget is spent on uniformly random pairs (deduplicated). Targets
    /// denser than the complete graph are clamped to it; the achieved
    /// density is surfaced by [`Topology::mean_degree`] and
    /// [`Topology::edge_shortfall`].
    ///
    /// # Errors
    /// Fails if `n < 2` or `mean_degree < 2`.
    pub fn random(n: usize, mean_degree: usize, rng: &mut SmallRng) -> Result<Topology> {
        if n < 2 {
            return Err(PdhtError::InvalidConfig {
                param: "n",
                reason: "need at least two peers".into(),
            });
        }
        if mean_degree < 2 {
            return Err(PdhtError::InvalidConfig {
                param: "mean_degree",
                reason: "mean degree must be at least 2 for connectivity".into(),
            });
        }
        let mut topo = Builder::new(n);

        // Random cycle backbone.
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        for i in 0..n {
            let a = order[i];
            let b = order[(i + 1) % n];
            topo.add_edge(a, b);
        }

        // Extra random edges until the mean degree target is met. The
        // retry budget tracks the expected rejection cost of the *next*
        // edge and is re-granted on every success (draw-for-draw identical
        // to the old fixed-guard loop until the moment that guard tripped).
        let max_edges = n * (n - 1) / 2;
        let target_edges = (n * mean_degree / 2).min(max_edges).max(topo.edges);
        let next_edge_budget =
            |edges: usize| EDGE_RETRY_FACTOR * (n * n / (2 * (max_edges - edges)) + 1);
        let mut attempts_left =
            if topo.edges < target_edges { next_edge_budget(topo.edges) } else { 0 };
        while topo.edges < target_edges && attempts_left > 0 {
            attempts_left -= 1;
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            if a != b && topo.add_edge(a, b) && topo.edges < target_edges {
                attempts_left = attempts_left.max(next_edge_budget(topo.edges));
            }
        }
        Ok(topo.finish(target_edges))
    }

    /// A preferential-attachment graph (Barabási–Albert flavour): each new
    /// peer attaches to `m` existing peers chosen proportionally to degree.
    /// Produces the heavy-tailed degree distributions observed on Gnutella.
    ///
    /// # Errors
    /// Fails if `n < 2` or `m == 0`.
    pub fn preferential(n: usize, m: usize, rng: &mut SmallRng) -> Result<Topology> {
        if n < 2 {
            return Err(PdhtError::InvalidConfig {
                param: "n",
                reason: "need at least two peers".into(),
            });
        }
        if m == 0 {
            return Err(PdhtError::InvalidConfig {
                param: "m",
                reason: "each peer must attach somewhere".into(),
            });
        }
        let mut topo = Builder::new(n);
        // Endpoint pool: each edge contributes both endpoints, so sampling
        // uniformly from the pool is degree-proportional sampling.
        let mut pool: Vec<usize> = Vec::with_capacity(2 * n * m);
        topo.add_edge(0, 1);
        pool.extend_from_slice(&[0, 1]);
        for v in 2..n {
            let mut attached = 0usize;
            let mut guard = 0usize;
            while attached < m.min(v) && guard < 50 * m {
                guard += 1;
                let &t = pool.as_slice().choose(rng).expect("pool non-empty");
                if t != v && topo.add_edge(v, t) {
                    pool.extend_from_slice(&[v, t]);
                    attached += 1;
                }
            }
            // Fallback so the graph stays connected even under collisions.
            if attached == 0 {
                topo.add_edge(v, v - 1);
                pool.extend_from_slice(&[v, v - 1]);
            }
        }
        let target_edges = topo.edges;
        Ok(topo.finish(target_edges))
    }

    /// Edges [`Topology::random`] aimed for but could not place before its
    /// retry budget ran out (0 for every reachable target — the regression
    /// tests pin this at high density).
    pub fn edge_shortfall(&self) -> usize {
        self.target_edges - self.edges
    }

    /// Drops every node with index `>= n` (and its edges), shrinking the
    /// graph to `0..n`. Construction draws are already spent when this
    /// runs, so truncating after [`Topology::random`] consumes exactly the
    /// RNG stream the full-size build did — the trick the replica-group
    /// padding fix relies on: build the 2-node minimum graph, then cut the
    /// padding node out so no traversal ever has to filter it.
    pub fn truncate(&mut self, n: usize) {
        if n >= self.len() {
            return;
        }
        // Compact the CSR arrays in place: the write cursor never passes
        // the read cursor, so surviving targets shift left one slice at a
        // time while the offsets are rewritten behind them.
        let mut write = 0usize;
        for i in 0..n {
            let (start, end) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
            self.offsets[i] = write as u32;
            for j in start..end {
                let nb = self.targets[j];
                if nb.idx() < n {
                    self.targets[write] = nb;
                    write += 1;
                }
            }
        }
        self.offsets[n] = write as u32;
        self.offsets.truncate(n + 1);
        self.targets.truncate(write);
        self.edges = write / 2;
        self.target_edges = self.target_edges.min(self.edges);
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// `true` if the graph has no peers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            2.0 * self.edges as f64 / self.len() as f64
        }
    }

    /// Neighbors of `peer` (one contiguous CSR slice).
    #[inline]
    pub fn neighbors(&self, peer: PeerId) -> &[PeerId] {
        let i = peer.idx();
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Warms the cache line that [`Topology::neighbors`]`(peer)` will read.
    /// Walk waves know every walker's position before the serial step loop
    /// runs; issuing these independent loads up front lets the core overlap
    /// the random CSR row fetches instead of paying each miss in turn.
    /// `black_box` keeps the otherwise-dead load from being optimised away;
    /// there is no semantic effect.
    #[inline]
    pub fn prefetch_neighbors(&self, peer: PeerId) {
        std::hint::black_box(self.offsets[peer.idx()]);
    }

    /// Is the whole graph connected? (BFS; test/diagnostic helper.)
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for &nb in self.neighbors(PeerId::from_idx(v)) {
                if !seen[nb.idx()] {
                    seen[nb.idx()] = true;
                    count += 1;
                    stack.push(nb.idx());
                }
            }
        }
        count == self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(2024)
    }

    #[test]
    fn random_graph_is_connected_with_target_degree() {
        let t = Topology::random(2_000, 6, &mut rng()).unwrap();
        assert!(t.is_connected());
        assert!((t.mean_degree() - 6.0).abs() < 0.5, "mean degree {}", t.mean_degree());
        assert_eq!(t.len(), 2_000);
    }

    #[test]
    fn adjacency_is_symmetric_and_simple() {
        let t = Topology::random(500, 5, &mut rng()).unwrap();
        for i in 0..500 {
            let me = PeerId::from_idx(i);
            for &nb in t.neighbors(me) {
                assert_ne!(nb, me, "no self-loops");
                assert!(t.neighbors(nb).contains(&me), "edges must be symmetric");
            }
            // No duplicate neighbor entries.
            let mut sorted: Vec<_> = t.neighbors(me).to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), t.neighbors(me).len());
        }
    }

    #[test]
    fn preferential_graph_is_connected_and_heavy_tailed() {
        let t = Topology::preferential(2_000, 3, &mut rng()).unwrap();
        assert!(t.is_connected());
        let mut degrees: Vec<usize> =
            (0..2_000).map(|i| t.neighbors(PeerId::from_idx(i)).len()).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        // Heavy tail: the top hub has far more links than the median peer.
        assert!(
            degrees[0] >= 5 * degrees[1000].max(1),
            "hub degree {} vs median {}",
            degrees[0],
            degrees[1000]
        );
    }

    #[test]
    fn dense_targets_are_met_not_silently_undershot() {
        // At high density most uniform pairs collide with existing edges;
        // the old fixed global retry guard gave up early and silently
        // delivered a sparser graph. The proportional budget must deliver
        // the full target (shortfall 0) right up to the complete graph.
        for (n, deg) in [(100usize, 80usize), (200, 150), (64, 63), (40, 39)] {
            let t = Topology::random(n, deg, &mut rng()).unwrap();
            assert_eq!(
                t.edge_shortfall(),
                0,
                "n={n}, deg={deg}: undershot by {} edges",
                t.edge_shortfall()
            );
            assert_eq!(t.num_edges(), n * deg / 2, "n={n}, deg={deg}");
            assert!((t.mean_degree() - deg as f64).abs() < 1.0);
            assert!(t.is_connected());
        }
    }

    #[test]
    fn impossible_targets_clamp_to_the_complete_graph() {
        // Denser than complete: the target is clamped, the achieved degree
        // is surfaced, and construction still terminates.
        let n = 30;
        let t = Topology::random(n, 100, &mut rng()).unwrap();
        assert_eq!(t.num_edges(), n * (n - 1) / 2, "must build the complete graph");
        assert_eq!(t.edge_shortfall(), 0);
        assert!((t.mean_degree() - (n - 1) as f64).abs() < 1e-9);
    }

    #[test]
    fn truncate_drops_high_nodes_and_their_edges() {
        let mut t = Topology::random(10, 4, &mut rng()).unwrap();
        let full = t.clone();
        t.truncate(6);
        assert_eq!(t.len(), 6);
        for i in 0..6 {
            let me = PeerId::from_idx(i);
            for &nb in t.neighbors(me) {
                assert!(nb.idx() < 6, "edge to truncated node survived");
                assert!(t.neighbors(nb).contains(&me), "edges stay symmetric");
                assert!(full.neighbors(me).contains(&nb), "no new edges appear");
            }
        }
        // Truncating to the current size (or larger) is a no-op.
        let before = t.num_edges();
        t.truncate(6);
        t.truncate(100);
        assert_eq!(t.num_edges(), before);
        assert_eq!(t.len(), 6);
        // Truncation never leaves a phantom shortfall.
        assert_eq!(t.edge_shortfall(), 0);
    }

    #[test]
    fn truncate_to_single_node_clears_adjacency() {
        let mut t = Topology::random(2, 2, &mut rng()).unwrap();
        t.truncate(1);
        assert_eq!(t.len(), 1);
        assert!(t.neighbors(PeerId(0)).is_empty());
        assert_eq!(t.num_edges(), 0);
    }

    #[test]
    fn tiny_graphs_work() {
        let t = Topology::random(2, 2, &mut rng()).unwrap();
        assert!(t.is_connected());
        assert_eq!(t.neighbors(PeerId(0)), &[PeerId(1)]);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(Topology::random(1, 4, &mut rng()).is_err());
        assert!(Topology::random(10, 1, &mut rng()).is_err());
        assert!(Topology::preferential(1, 2, &mut rng()).is_err());
        assert!(Topology::preferential(10, 0, &mut rng()).is_err());
    }

    #[test]
    fn determinism_from_seed() {
        let a = Topology::random(300, 4, &mut SmallRng::seed_from_u64(5)).unwrap();
        let b = Topology::random(300, 4, &mut SmallRng::seed_from_u64(5)).unwrap();
        for i in 0..300 {
            assert_eq!(a.neighbors(PeerId::from_idx(i)), b.neighbors(PeerId::from_idx(i)));
        }
    }
}
