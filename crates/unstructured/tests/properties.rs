//! Property tests for the unstructured overlay.

use pdht_sim::Metrics;
use pdht_types::{Liveness, PeerId};
use pdht_unstructured::{flood, random_walks, Replication, Topology};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random graphs are connected, simple and symmetric for any size/seed.
    #[test]
    fn random_graph_invariants(n in 2usize..500, degree in 2usize..8, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let t = Topology::random(n, degree, &mut rng).unwrap();
        prop_assert!(t.is_connected());
        for i in 0..n {
            let me = PeerId::from_idx(i);
            let mut nbs: Vec<PeerId> = t.neighbors(me).to_vec();
            for &nb in &nbs {
                prop_assert_ne!(nb, me, "self loop");
                prop_assert!(t.neighbors(nb).contains(&me), "asymmetric edge");
            }
            let before = nbs.len();
            nbs.sort_unstable();
            nbs.dedup();
            prop_assert_eq!(nbs.len(), before, "parallel edge");
        }
    }

    /// Flooding with unbounded TTL from any online origin visits exactly
    /// the origin's online connected component.
    #[test]
    fn flood_visits_component(
        n in 2usize..300,
        seed in any::<u64>(),
        offline in prop::collection::vec(any::<bool>(), 300),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let t = Topology::random(n, 4, &mut rng).unwrap();
        let mut live = Liveness::all_online(n);
        for (i, &off) in offline.iter().take(n).enumerate() {
            if off && i != 0 {
                live.set(PeerId::from_idx(i), false);
            }
        }
        let mut m = Metrics::new();
        let out = flood(&t, PeerId(0), u32::MAX, |_| false, &live, &mut m);

        // Reference BFS over the online subgraph.
        let mut seen = vec![false; n];
        seen[0] = true;
        let mut stack = vec![0usize];
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &nb in t.neighbors(PeerId::from_idx(v)) {
                if live.is_online(nb) && !seen[nb.idx()] {
                    seen[nb.idx()] = true;
                    count += 1;
                    stack.push(nb.idx());
                }
            }
        }
        prop_assert_eq!(out.peers_visited, count);
    }

    /// Replication holders are always valid, distinct peers; random walks
    /// with a generous budget find a replicated item in a static network.
    #[test]
    fn walks_find_replicated_items(
        n in 50usize..400,
        repl_pct in 5usize..30,
        seed in any::<u64>(),
    ) {
        let repl = (n * repl_pct / 100).max(1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let t = Topology::random(n, 5, &mut rng).unwrap();
        let r = Replication::place(4, repl, n, &mut rng).unwrap();
        let live = Liveness::all_online(n);
        let mut m = Metrics::new();
        for item in 0..4 {
            prop_assert_eq!(r.holders(item).len(), repl);
            let out = random_walks(
                &t,
                PeerId(0),
                8,
                (n as u64) * 200,
                |p| r.is_holder(item, p),
                &live,
                &mut rng,
                &mut m,
            );
            prop_assert!(out.found.is_some(), "item {item} not found (repl {repl} of {n})");
            prop_assert!(r.is_holder(item, out.found.unwrap()));
        }
    }
}
