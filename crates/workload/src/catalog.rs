//! The global key universe.
//!
//! Table 1's `keys = 40 000` is the number of *unique* keys extracted from
//! 2 000 articles × 20 metadata keys. The catalog holds the mapping between
//! dense key indices (what workloads sample), 64-bit hashed [`Key`]s (what
//! overlays route on), and the owning article (what updates invalidate).

use crate::metadata::Article;
use pdht_types::{fasthash, FastHashMap, Key};

/// The key universe of a scenario.
#[derive(Clone, Debug)]
pub struct KeyCatalog {
    /// Hashed key per index.
    keys: Vec<Key>,
    /// Human-readable key string per index (kept for debuggability and the
    /// examples; a deployment would not need it).
    strings: Vec<String>,
    /// Owning article per key index.
    article_of: Vec<u32>,
    /// Reverse map hash → index.
    by_key: FastHashMap<Key, u32>,
}

impl KeyCatalog {
    /// Builds the catalog from a set of articles. Duplicate key strings
    /// across articles (shared authors, dates, …) are kept once, owned by
    /// the first article that produced them.
    pub fn build(articles: &[Article]) -> KeyCatalog {
        let estimated = articles.len() * crate::metadata::KEYS_PER_ARTICLE;
        let mut keys = Vec::with_capacity(estimated);
        let mut strings = Vec::with_capacity(estimated);
        let mut article_of = Vec::with_capacity(estimated);
        let mut by_key: FastHashMap<Key, u32> = fasthash::map_with_capacity(estimated * 2);
        for article in articles {
            for s in article.key_strings() {
                let k = Key::hash_str(&s);
                if let std::collections::hash_map::Entry::Vacant(v) = by_key.entry(k) {
                    v.insert(keys.len() as u32);
                    keys.push(k);
                    strings.push(s);
                    article_of.push(article.id);
                }
            }
        }
        KeyCatalog { keys, strings, article_of, by_key }
    }

    /// Number of unique keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when no keys exist.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The hashed key at `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    #[inline]
    pub fn key(&self, index: usize) -> Key {
        self.keys[index]
    }

    /// The key string at `index`.
    pub fn key_string(&self, index: usize) -> &str {
        &self.strings[index]
    }

    /// The article owning the key at `index`.
    pub fn article_of(&self, index: usize) -> u32 {
        self.article_of[index]
    }

    /// Reverse lookup: dense index of a hashed key.
    pub fn index_of(&self, key: Key) -> Option<usize> {
        self.by_key.get(&key).map(|&i| i as usize)
    }

    /// Key indices belonging to `article` (scan; used by the update path on
    /// small per-article key sets).
    pub fn keys_of_article(&self, article: u32) -> Vec<usize> {
        self.article_of.iter().enumerate().filter(|&(_, &a)| a == article).map(|(i, _)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::NewsGenerator;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn catalog(n_articles: usize) -> KeyCatalog {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut g = NewsGenerator::new();
        let articles = g.articles(n_articles, &mut rng);
        KeyCatalog::build(&articles)
    }

    #[test]
    fn catalog_size_is_close_to_articles_times_keys() {
        let c = catalog(200);
        // 200 × 20 = 4000 raw keys. Realistic metadata shares authors,
        // dates, sections and title terms across articles, so roughly half
        // dedupe away — each article keeps ~10–14 unique keys (title,
        // title&date, size, size&date, id terms, aux padding).
        assert!(c.len() > 2_000, "len = {}", c.len());
        assert!(c.len() <= 4_000);
    }

    #[test]
    fn forward_and_reverse_maps_agree() {
        let c = catalog(50);
        for i in 0..c.len() {
            assert_eq!(c.index_of(c.key(i)), Some(i));
            assert_eq!(Key::hash_str(c.key_string(i)), c.key(i));
        }
        assert_eq!(c.index_of(Key(0xdead_beef)), None);
    }

    #[test]
    fn article_ownership_is_consistent() {
        let c = catalog(30);
        for article in 0..30u32 {
            for ki in c.keys_of_article(article) {
                assert_eq!(c.article_of(ki), article);
            }
        }
        // Every key belongs to some generated article.
        for i in 0..c.len() {
            assert!(c.article_of(i) < 30);
        }
    }

    #[test]
    fn empty_catalog() {
        let c = KeyCatalog::build(&[]);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }
}
