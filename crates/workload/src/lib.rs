//! Workload generation for the news-system scenario (paper Sections 1 & 4).
//!
//! "Peers generate news articles, which are described by metadata … consist
//! of element-value pairs, such as title = 'Weather Iráklion'". Queries hash
//! single or concatenated pairs into keys (\[FeBi04\]); stop words are
//! globally known and never indexed.
//!
//! * [`metadata`] — article generation and key extraction,
//! * [`catalog`] — the global key universe (2 000 articles × 20 keys =
//!   40 000 keys in Table 1),
//! * [`queries`] — Zipf query streams with optional popularity shift,
//! * [`updates`] — the article-replacement process (one replacement per
//!   article per day on average).

pub mod catalog;
pub mod metadata;
pub mod queries;
pub mod updates;

pub use catalog::KeyCatalog;
pub use metadata::{Article, NewsGenerator, STOP_WORDS};
pub use queries::{Query, QueryWorkload};
pub use updates::UpdateProcess;
