//! News articles and metadata key extraction.
//!
//! Each article carries element-value metadata; keys are FNV hashes of
//! `element=value` strings and of selected concatenations
//! (`element1=value1&element2=value2`), per \[FeBi04\]. Stop words are
//! filtered before key generation — "It is a standard approach in
//! information retrieval to avoid indexing stop words" (Section 4).

use pdht_types::Key;
use rand::rngs::SmallRng;
use rand::seq::IndexedRandom;
use rand::Rng;

/// The globally known stop-word set (Section 4 assumes all peers share it).
pub const STOP_WORDS: [&str; 12] =
    ["the", "and", "a", "an", "of", "in", "on", "to", "for", "at", "by", "with"];

/// Number of metadata keys extracted per article (Table 1: 20 keys per
/// article, 2 000 articles → 40 000 keys).
pub const KEYS_PER_ARTICLE: usize = 20;

/// A news article with its metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Article {
    /// Dense article id.
    pub id: u32,
    /// Content version (bumped on replacement).
    pub version: u64,
    /// Metadata element-value pairs.
    pub attrs: Vec<(String, String)>,
}

impl Article {
    /// Extracts the article's indexable key strings: every element-value
    /// pair, selected pairwise concatenations, and per-word title terms —
    /// minus stop words — padded/truncated to exactly
    /// [`KEYS_PER_ARTICLE`] entries.
    pub fn key_strings(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::with_capacity(KEYS_PER_ARTICLE + 8);
        // Single pairs: "element=value".
        for (e, v) in &self.attrs {
            out.push(format!("{e}={v}"));
        }
        // Concatenated pairs with the date (the paper's example:
        // hash(title = … AND date = …)).
        if let Some((_, date)) = self.attrs.iter().find(|(e, _)| e == "date") {
            for (e, v) in &self.attrs {
                if e != "date" {
                    out.push(format!("{e}={v}&date={date}"));
                }
            }
        }
        // Per-word title terms, stop words removed.
        if let Some((_, title)) = self.attrs.iter().find(|(e, _)| e == "title") {
            for word in title.split_whitespace() {
                let lower = word.to_lowercase();
                if !STOP_WORDS.contains(&lower.as_str()) {
                    out.push(format!("term={lower}"));
                }
            }
        }
        // Deterministic padding so every article yields the same key count
        // (keeps the catalog exactly articles × KEYS_PER_ARTICLE).
        let mut pad = 0usize;
        while out.len() < KEYS_PER_ARTICLE {
            out.push(format!("aux{}#article={}", pad, self.id));
            pad += 1;
        }
        out.truncate(KEYS_PER_ARTICLE);
        out
    }

    /// The hashed [`Key`]s of [`Article::key_strings`].
    pub fn keys(&self) -> Vec<Key> {
        self.key_strings().iter().map(|s| Key::hash_str(s)).collect()
    }
}

/// Word lists for plausible-looking news metadata.
const PLACES: [&str; 16] = [
    "Iráklion",
    "Lausanne",
    "Geneva",
    "Athens",
    "Berlin",
    "Paris",
    "Oslo",
    "Madrid",
    "Rome",
    "Vienna",
    "Lisbon",
    "Dublin",
    "Prague",
    "Zurich",
    "Warsaw",
    "Helsinki",
];
const TOPICS: [&str; 12] = [
    "Weather", "Election", "Markets", "Football", "Research", "Transit", "Energy", "Health",
    "Culture", "Startups", "Climate", "Security",
];
const AGENCIES: [&str; 8] = [
    "Crete Weather Service",
    "Alpine Press",
    "Metro Desk",
    "Science Wire",
    "Field Bureau",
    "Harbor News",
    "Summit Report",
    "Civic Journal",
];
const SECTIONS: [&str; 6] = ["world", "local", "sport", "science", "economy", "culture"];

/// Deterministic generator of synthetic news articles.
pub struct NewsGenerator {
    next_id: u32,
    day: u32,
}

impl Default for NewsGenerator {
    fn default() -> Self {
        Self::new()
    }
}

impl NewsGenerator {
    /// A fresh generator starting at article id 0.
    pub fn new() -> NewsGenerator {
        NewsGenerator { next_id: 0, day: 0 }
    }

    /// Generates one article.
    pub fn article(&mut self, rng: &mut SmallRng) -> Article {
        let id = self.next_id;
        self.next_id += 1;
        self.day = self.day.wrapping_add(u32::from(rng.random::<f64>() < 0.1));
        let topic = *TOPICS.choose(rng).expect("non-empty");
        let place = *PLACES.choose(rng).expect("non-empty");
        let agency = *AGENCIES.choose(rng).expect("non-empty");
        let section = *SECTIONS.choose(rng).expect("non-empty");
        let date = format!("2004/03/{:02}", 1 + (self.day % 28));
        // The id inside the title keeps key strings article-unique, like
        // real headlines differing in specifics.
        let title = format!("{topic} {place} Report {id}");
        let size = 800 + rng.random_range(0..4000u32);
        Article {
            id,
            version: 1,
            attrs: vec![
                ("title".into(), title),
                ("author".into(), agency.to_string()),
                ("date".into(), date),
                ("section".into(), section.to_string()),
                ("place".into(), place.to_string()),
                ("size".into(), size.to_string()),
            ],
        }
    }

    /// Generates `n` articles.
    pub fn articles(&mut self, n: usize, rng: &mut SmallRng) -> Vec<Article> {
        (0..n).map(|_| self.article(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(8)
    }

    #[test]
    fn every_article_yields_exactly_twenty_keys() {
        let mut g = NewsGenerator::new();
        for article in g.articles(50, &mut rng()) {
            assert_eq!(article.key_strings().len(), KEYS_PER_ARTICLE);
            assert_eq!(article.keys().len(), KEYS_PER_ARTICLE);
        }
    }

    #[test]
    fn key_strings_are_unique_within_an_article() {
        let mut g = NewsGenerator::new();
        let a = g.article(&mut rng());
        let mut ks = a.key_strings();
        ks.sort();
        let before = ks.len();
        ks.dedup();
        assert_eq!(ks.len(), before, "duplicate key strings within an article");
    }

    #[test]
    fn stop_words_never_become_term_keys() {
        let article = Article {
            id: 0,
            version: 1,
            attrs: vec![
                ("title".into(), "The Weather of Iráklion and the Sea".into()),
                ("date".into(), "2004/03/14".into()),
            ],
        };
        let ks = article.key_strings();
        for sw in STOP_WORDS {
            assert!(
                !ks.iter().any(|k| k == &format!("term={sw}")),
                "stop word `{sw}` leaked into keys"
            );
        }
        assert!(ks.iter().any(|k| k == "term=weather"));
        assert!(ks.iter().any(|k| k == "term=iráklion"));
    }

    #[test]
    fn paper_example_pairs_are_present() {
        let article = Article {
            id: 7,
            version: 1,
            attrs: vec![
                ("title".into(), "Weather Iráklion".into()),
                ("author".into(), "Crete Weather Service".into()),
                ("date".into(), "2004/03/14".into()),
                ("size".into(), "2405".into()),
            ],
        };
        let ks = article.key_strings();
        assert!(ks.contains(&"title=Weather Iráklion".to_string()));
        assert!(ks.contains(&"size=2405".to_string()));
        assert!(ks.contains(&"title=Weather Iráklion&date=2004/03/14".to_string()));
    }

    #[test]
    fn ids_are_sequential_and_deterministic() {
        let mut g = NewsGenerator::new();
        let a = g.articles(10, &mut rng());
        for (i, art) in a.iter().enumerate() {
            assert_eq!(art.id as usize, i);
        }
        let mut g2 = NewsGenerator::new();
        let b = g2.articles(10, &mut rng());
        assert_eq!(a, b, "same seed must generate identical articles");
    }

    #[test]
    fn distinct_articles_have_distinct_keys() {
        let mut g = NewsGenerator::new();
        let arts = g.articles(100, &mut rng());
        let mut all: Vec<Key> = arts.iter().flat_map(Article::keys).collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        // Title uniqueness (id-embedded) plus concatenations make cross-
        // article collisions possible only for shared attributes
        // (author/date/section/place/term) — which *should* collide; but
        // the majority must be unique.
        assert!(all.len() > before / 2, "too many key collisions: {} of {before}", all.len());
    }
}
