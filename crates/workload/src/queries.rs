//! Zipf query streams.
//!
//! Per round, the network issues `Poisson(numPeers · fQry)` queries; each
//! query originates at a uniformly random peer and targets the key at a
//! Zipf-sampled rank, mapped through the active popularity shift
//! ([`pdht_zipf::PopularityShift`]).

use pdht_sim::random::poisson;
use pdht_types::{PeerId, Result};
use pdht_zipf::{PopularityShift, ZipfDistribution};
use rand::rngs::SmallRng;
use rand::Rng;

/// One query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Query {
    /// The peer that issues the query.
    pub origin: PeerId,
    /// Dense index of the queried key.
    pub key_index: usize,
    /// The Zipf rank that was sampled (diagnostics; `key_index` already
    /// embeds the shift).
    pub rank: usize,
}

/// A query workload over a key catalog.
pub struct QueryWorkload {
    zipf: ZipfDistribution,
    shift: PopularityShift,
    num_peers: u32,
    f_qry: f64,
}

impl QueryWorkload {
    /// Creates a workload of `num_peers` peers each issuing `f_qry` queries
    /// per second over `keys` keys with Zipf exponent `alpha`.
    ///
    /// # Errors
    /// Propagates parameter validation failures.
    pub fn new(
        keys: usize,
        alpha: f64,
        num_peers: u32,
        f_qry: f64,
        shift: Option<PopularityShift>,
    ) -> Result<QueryWorkload> {
        if !f_qry.is_finite() || f_qry < 0.0 {
            return Err(pdht_types::PdhtError::InvalidConfig {
                param: "f_qry",
                reason: format!("must be finite and >= 0, got {f_qry}"),
            });
        }
        Ok(QueryWorkload {
            zipf: ZipfDistribution::new(keys, alpha)?,
            shift: shift.unwrap_or_else(|| PopularityShift::none(keys)),
            num_peers,
            f_qry,
        })
    }

    /// Expected queries per round.
    pub fn expected_per_round(&self) -> f64 {
        f64::from(self.num_peers) * self.f_qry
    }

    /// The underlying distribution.
    pub fn zipf(&self) -> &ZipfDistribution {
        &self.zipf
    }

    /// The shift schedule.
    pub fn shift(&self) -> &PopularityShift {
        &self.shift
    }

    /// Samples the queries issued in `round`.
    pub fn round_queries(&self, round: u64, rng: &mut SmallRng) -> Vec<Query> {
        self.round_queries_range(round, rng, 0, self.num_peers)
    }

    /// Samples the queries issued in `round` by origins in
    /// `[origin_lo, origin_hi)`: a `Poisson((hi-lo) · fQry)` count with
    /// origins uniform in the range and keys Zipf-sampled over the *global*
    /// catalog.
    ///
    /// This is the per-shard form of [`QueryWorkload::round_queries`]: the
    /// population split into disjoint ranges, each range drawing from its
    /// own RNG stream, yields the same per-peer query law as the global
    /// draw (Poisson processes split by independent thinning), and the full
    /// range `[0, num_peers)` is bit-identical to the unsharded method.
    ///
    /// # Panics
    /// Panics if the range is inverted or extends past the population.
    pub fn round_queries_range(
        &self,
        round: u64,
        rng: &mut SmallRng,
        origin_lo: u32,
        origin_hi: u32,
    ) -> Vec<Query> {
        assert!(
            origin_lo <= origin_hi && origin_hi <= self.num_peers,
            "origin range [{origin_lo}, {origin_hi}) out of bounds for {} peers",
            self.num_peers
        );
        let n = poisson(rng, f64::from(origin_hi - origin_lo) * self.f_qry);
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let rank = self.zipf.sample(rng);
            let key_index = self.shift.key_for(rank, round);
            let origin = PeerId(rng.random_range(origin_lo..origin_hi));
            out.push(Query { origin, key_index, rank });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdht_zipf::RankMap;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(55)
    }

    #[test]
    fn volume_matches_expectation() {
        let w = QueryWorkload::new(1_000, 1.2, 2_000, 1.0 / 30.0, None).unwrap();
        assert!((w.expected_per_round() - 66.67).abs() < 0.1);
        let mut r = rng();
        let total: usize = (0..300).map(|round| w.round_queries(round, &mut r).len()).sum();
        let avg = total as f64 / 300.0;
        assert!((avg - 66.67).abs() < 3.0, "avg {avg} per round");
    }

    #[test]
    fn origins_are_within_population_and_spread() {
        let w = QueryWorkload::new(100, 1.0, 50, 2.0, None).unwrap();
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for round in 0..50 {
            for q in w.round_queries(round, &mut r) {
                assert!(q.origin.0 < 50);
                assert!(q.key_index < 100);
                seen.insert(q.origin.0);
            }
        }
        assert!(seen.len() > 40, "origins should cover most peers, got {}", seen.len());
    }

    #[test]
    fn head_keys_dominate() {
        let w = QueryWorkload::new(10_000, 1.2, 1_000, 1.0, None).unwrap();
        let mut r = rng();
        let mut head = 0usize;
        let mut total = 0usize;
        for round in 0..100 {
            for q in w.round_queries(round, &mut r) {
                total += 1;
                if q.key_index < 100 {
                    head += 1;
                }
            }
        }
        let frac = head as f64 / total as f64;
        // Top 1% of ranks carries >50% of Zipf(1.2) mass.
        assert!(frac > 0.5, "head fraction {frac}");
    }

    #[test]
    fn shift_redirects_popularity() {
        let shift = PopularityShift::new(vec![
            (0, RankMap::identity(1_000)),
            (50, RankMap::rotation(1_000, 500)),
        ])
        .unwrap();
        let w = QueryWorkload::new(1_000, 1.2, 1_000, 1.0, Some(shift)).unwrap();
        let mut r = rng();
        let head_fraction = |w: &QueryWorkload, rounds: std::ops::Range<u64>, r: &mut SmallRng| {
            let mut head = 0usize;
            let mut total = 0usize;
            for round in rounds {
                for q in w.round_queries(round, r) {
                    total += 1;
                    if q.key_index < 100 {
                        head += 1;
                    }
                }
            }
            head as f64 / total as f64
        };
        let before = head_fraction(&w, 0..50, &mut r);
        let after = head_fraction(&w, 50..100, &mut r);
        assert!(before > 0.5, "before shift the old head is hot: {before}");
        assert!(after < 0.05, "after shift the old head goes cold: {after}");
    }

    #[test]
    fn zero_rate_produces_no_queries() {
        let w = QueryWorkload::new(10, 1.2, 100, 0.0, None).unwrap();
        let mut r = rng();
        for round in 0..10 {
            assert!(w.round_queries(round, &mut r).is_empty());
        }
    }

    #[test]
    fn range_draw_confines_origins_and_scales_volume() {
        let w = QueryWorkload::new(500, 1.1, 1_000, 0.5, None).unwrap();
        let mut r = rng();
        let mut total = 0usize;
        for round in 0..200 {
            for q in w.round_queries_range(round, &mut r, 250, 500) {
                assert!((250..500).contains(&q.origin.0));
                total += 1;
            }
        }
        // 250 origins at fQry=0.5 → ~125 queries per round.
        let avg = total as f64 / 200.0;
        assert!((avg - 125.0).abs() < 6.0, "avg {avg} per round");
    }

    #[test]
    fn full_range_matches_round_queries_bitwise() {
        let w = QueryWorkload::new(2_000, 1.2, 777, 0.3, None).unwrap();
        let mut r_a = rng();
        let mut r_b = rng();
        for round in 0..50 {
            assert_eq!(
                w.round_queries(round, &mut r_a),
                w.round_queries_range(round, &mut r_b, 0, 777)
            );
        }
    }

    #[test]
    fn empty_range_draws_nothing() {
        let w = QueryWorkload::new(100, 1.0, 50, 2.0, None).unwrap();
        let mut r = rng();
        assert!(w.round_queries_range(0, &mut r, 30, 30).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn range_past_population_rejected() {
        let w = QueryWorkload::new(100, 1.0, 50, 2.0, None).unwrap();
        let mut r = rng();
        let _ = w.round_queries_range(0, &mut r, 0, 51);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(QueryWorkload::new(10, 1.2, 10, f64::NAN, None).is_err());
        assert!(QueryWorkload::new(0, 1.2, 10, 0.1, None).is_err());
    }
}
