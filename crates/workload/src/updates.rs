//! The article-replacement process.
//!
//! "Each article is replaced every 24 hours on average" (Section 4): each
//! article independently renews with exponential inter-replacement times,
//! so the network-wide replacement stream is Poisson with rate
//! `articles / 86 400` per second. A replacement bumps the article version;
//! the new content is "actively replicated together with their metadata
//! files".

use pdht_sim::random::poisson;
use pdht_types::{PdhtError, Result};
use rand::rngs::SmallRng;
use rand::Rng;

/// One article replacement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Replacement {
    /// Which article was replaced.
    pub article: u32,
    /// Its new version.
    pub new_version: u64,
}

/// The replacement process over a fixed article population.
pub struct UpdateProcess {
    versions: Vec<u64>,
    rate_per_article: f64,
}

impl UpdateProcess {
    /// `mean_lifetime_secs` is the average time between replacements of one
    /// article (86 400 in Table 1).
    ///
    /// # Errors
    /// Rejects non-positive lifetimes.
    pub fn new(num_articles: usize, mean_lifetime_secs: f64) -> Result<UpdateProcess> {
        if !mean_lifetime_secs.is_finite() || mean_lifetime_secs <= 0.0 {
            return Err(PdhtError::InvalidConfig {
                param: "mean_lifetime_secs",
                reason: format!("must be finite and > 0, got {mean_lifetime_secs}"),
            });
        }
        Ok(UpdateProcess {
            versions: vec![1; num_articles],
            rate_per_article: 1.0 / mean_lifetime_secs,
        })
    }

    /// Number of articles.
    pub fn num_articles(&self) -> usize {
        self.versions.len()
    }

    /// Current version of `article`.
    pub fn version(&self, article: u32) -> u64 {
        self.versions[article as usize]
    }

    /// Network-wide expected replacements per second.
    pub fn expected_per_round(&self) -> f64 {
        self.rate_per_article * self.versions.len() as f64
    }

    /// Samples the replacements occurring in one round and applies the
    /// version bumps.
    pub fn round_updates(&mut self, rng: &mut SmallRng) -> Vec<Replacement> {
        if self.versions.is_empty() {
            return Vec::new();
        }
        let n = poisson(rng, self.expected_per_round());
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let article = rng.random_range(0..self.versions.len() as u32);
            self.versions[article as usize] += 1;
            out.push(Replacement { article, new_version: self.versions[article as usize] });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(12)
    }

    #[test]
    fn replacement_rate_matches_lifetime() {
        // 2 000 articles / 86 400 s ≈ 0.0231 replacements per second; over
        // 50 000 simulated seconds expect ≈ 1 157.
        let mut u = UpdateProcess::new(2_000, 86_400.0).unwrap();
        assert!((u.expected_per_round() - 0.02315).abs() < 1e-4);
        let mut r = rng();
        let total: usize = (0..50_000).map(|_| u.round_updates(&mut r).len()).sum();
        let expected = 50_000.0 * 2_000.0 / 86_400.0;
        assert!(
            (total as f64 - expected).abs() < expected * 0.1,
            "total {total} vs expected {expected}"
        );
    }

    #[test]
    fn versions_increase_monotonically() {
        let mut u = UpdateProcess::new(10, 5.0).unwrap();
        let mut r = rng();
        let mut last = [1u64; 10];
        for _ in 0..200 {
            for rep in u.round_updates(&mut r) {
                assert_eq!(rep.new_version, last[rep.article as usize] + 1);
                last[rep.article as usize] = rep.new_version;
            }
        }
        for a in 0..10u32 {
            assert_eq!(u.version(a), last[a as usize]);
            assert!(u.version(a) > 1, "with 5 s lifetime everything updates");
        }
    }

    #[test]
    fn empty_population_is_quiet() {
        let mut u = UpdateProcess::new(0, 100.0).unwrap();
        let mut r = rng();
        assert!(u.round_updates(&mut r).is_empty());
        assert_eq!(u.expected_per_round(), 0.0);
    }

    #[test]
    fn invalid_lifetime_rejected() {
        assert!(UpdateProcess::new(10, 0.0).is_err());
        assert!(UpdateProcess::new(10, -5.0).is_err());
        assert!(UpdateProcess::new(10, f64::NAN).is_err());
    }
}
