//! Property tests for workload generation.

use pdht_types::Key;
use pdht_workload::{Article, KeyCatalog, NewsGenerator, QueryWorkload, UpdateProcess};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any generated corpus yields a consistent catalog: bijective
    /// forward/reverse maps, valid article owners, hash-stable strings.
    #[test]
    fn catalog_is_internally_consistent(n_articles in 1usize..60, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let articles = NewsGenerator::new().articles(n_articles, &mut rng);
        let catalog = KeyCatalog::build(&articles);
        prop_assert!(!catalog.is_empty());
        for i in 0..catalog.len() {
            prop_assert_eq!(catalog.index_of(catalog.key(i)), Some(i));
            prop_assert_eq!(Key::hash_str(catalog.key_string(i)), catalog.key(i));
            prop_assert!((catalog.article_of(i) as usize) < n_articles);
        }
    }

    /// Key extraction is deterministic and bounded for arbitrary metadata
    /// (not just generator output).
    #[test]
    fn key_extraction_handles_arbitrary_metadata(
        id in any::<u32>(),
        title in "[a-zA-Z ]{0,40}",
        extra in prop::collection::vec(("[a-z]{1,8}", "[a-zA-Z0-9/ ]{0,16}"), 0..6),
    ) {
        let mut attrs = vec![("title".to_string(), title)];
        attrs.extend(extra);
        let article = Article { id, version: 1, attrs };
        let a = article.key_strings();
        let b = article.key_strings();
        prop_assert_eq!(&a, &b, "extraction must be deterministic");
        prop_assert_eq!(a.len(), pdht_workload::metadata::KEYS_PER_ARTICLE);
        // No stop-word terms.
        for s in &a {
            if let Some(term) = s.strip_prefix("term=") {
                prop_assert!(!pdht_workload::STOP_WORDS.contains(&term));
            }
        }
    }

    /// Query volumes follow the configured rate for any population.
    #[test]
    fn query_volume_tracks_rate(
        keys in 10usize..2_000,
        peers in 10u32..2_000,
        denom in 1.0f64..100.0,
        seed in any::<u64>(),
    ) {
        let f_qry = 1.0 / denom;
        let w = QueryWorkload::new(keys, 1.2, peers, f_qry, None).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let rounds = 60u64;
        let total: usize = (0..rounds).map(|r| w.round_queries(r, &mut rng).len()).sum();
        let expect = w.expected_per_round() * rounds as f64;
        // Poisson total: 6σ band.
        let sd = expect.sqrt();
        prop_assert!(
            (total as f64 - expect).abs() <= 6.0 * sd + 6.0,
            "total {total} vs expected {expect}"
        );
        let _ = f_qry;
    }

    /// Update versions are dense per article: version = 1 + #replacements.
    #[test]
    fn update_versions_are_dense(
        n_articles in 1usize..50,
        lifetime in 1.0f64..50.0,
        seed in any::<u64>(),
    ) {
        let mut u = UpdateProcess::new(n_articles, lifetime).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut counts = vec![0u64; n_articles];
        for _ in 0..100 {
            for rep in u.round_updates(&mut rng) {
                counts[rep.article as usize] += 1;
                prop_assert_eq!(rep.new_version, counts[rep.article as usize] + 1);
            }
        }
        for (a, &c) in counts.iter().enumerate() {
            prop_assert_eq!(u.version(a as u32), c + 1);
        }
    }
}
