//! Exact Zipf distribution over ranked keys (Eq. 3 and 5).
//!
//! `prob(rank) = rank^{-α} / Σ_{x=1}^{keys} x^{-α}`, ranks are **1-based** as
//! in the paper. The distribution pre-computes the CDF once (O(n)) and then
//! supports O(log n) sampling and O(1) pmf/head-mass queries.

use crate::kahan::KahanSum;
use rand::Rng;

/// A Zipf distribution over `{1, …, n}` with exponent `alpha`.
#[derive(Clone, Debug)]
pub struct ZipfDistribution {
    n: usize,
    alpha: f64,
    /// `cdf[r-1]` = P(rank ≤ r); `cdf[n-1] == 1.0` exactly (renormalized).
    cdf: Vec<f64>,
    /// Normalization constant `Σ x^-α` (generalized harmonic number).
    harmonic: f64,
}

impl ZipfDistribution {
    /// Builds the distribution.
    ///
    /// # Errors
    /// Returns an error if `n == 0` or `alpha` is not finite/non-negative.
    /// (`alpha == 0` degenerates to the uniform distribution, which is
    /// legal and useful in tests.)
    pub fn new(n: usize, alpha: f64) -> pdht_types::Result<Self> {
        if n == 0 {
            return Err(pdht_types::PdhtError::InvalidConfig {
                param: "keys",
                reason: "Zipf distribution needs at least one key".into(),
            });
        }
        if !alpha.is_finite() || alpha < 0.0 {
            return Err(pdht_types::PdhtError::InvalidConfig {
                param: "alpha",
                reason: format!("alpha must be finite and >= 0, got {alpha}"),
            });
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = KahanSum::new();
        for rank in 1..=n {
            acc.add((rank as f64).powf(-alpha));
            cdf.push(acc.total());
        }
        let harmonic = acc.total();
        // Renormalize so the last entry is exactly 1.0; sampling then never
        // falls off the end.
        let inv = 1.0 / harmonic;
        for c in &mut cdf {
            *c *= inv;
        }
        *cdf.last_mut().expect("n >= 1") = 1.0;
        Ok(ZipfDistribution { n, alpha, cdf, harmonic })
    }

    /// Number of ranks.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The exponent α.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The normalization constant `Σ_{x=1}^{n} x^{-α}`.
    #[inline]
    pub fn harmonic(&self) -> f64 {
        self.harmonic
    }

    /// Eq. 3: probability of a query hitting the key at `rank` (1-based).
    ///
    /// # Panics
    /// Panics if `rank` is 0 or exceeds `n`.
    #[inline]
    pub fn prob(&self, rank: usize) -> f64 {
        assert!((1..=self.n).contains(&rank), "rank {rank} out of 1..={}", self.n);
        (rank as f64).powf(-self.alpha) / self.harmonic
    }

    /// P(rank ≤ r): cumulative probability of the top `r` ranks.
    /// `head_mass(0) == 0`, `head_mass(n) == 1`.
    ///
    /// This is Eq. 5's `pIndxd` when `r = maxRank`.
    #[inline]
    pub fn head_mass(&self, r: usize) -> f64 {
        assert!(r <= self.n, "r {r} out of 0..={}", self.n);
        if r == 0 {
            0.0
        } else {
            self.cdf[r - 1]
        }
    }

    /// Draws a rank (1-based) by CDF inversion; O(log n).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // partition_point returns the count of entries < u, i.e. the
        // 0-based index of the first cdf entry >= u; +1 makes it a rank.
        self.cdf.partition_point(|&c| c < u) + 1
    }

    /// The smallest `r` such that `head_mass(r) >= target`, or `n` if the
    /// target is unreachable. Useful for "how many keys cover X % of
    /// queries" analyses.
    pub fn ranks_for_mass(&self, target: f64) -> usize {
        assert!((0.0..=1.0).contains(&target), "target must be a probability");
        self.cdf.partition_point(|&c| c < target) + usize::from(target > 0.0).min(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn dist(n: usize, alpha: f64) -> ZipfDistribution {
        ZipfDistribution::new(n, alpha).expect("valid params")
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, a) in &[(1usize, 1.2), (10, 0.0), (1000, 0.8), (40_000, 1.2)] {
            let d = dist(n, a);
            let total: f64 = (1..=n).map(|r| d.prob(r)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} a={a} total={total}");
        }
    }

    #[test]
    fn pmf_is_monotone_nonincreasing() {
        let d = dist(500, 1.2);
        for r in 1..500 {
            assert!(d.prob(r) >= d.prob(r + 1));
        }
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let d = dist(8, 0.0);
        for r in 1..=8 {
            assert!((d.prob(r) - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn head_mass_endpoints_and_monotonicity() {
        let d = dist(100, 1.2);
        assert_eq!(d.head_mass(0), 0.0);
        assert!((d.head_mass(100) - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for r in 1..=100 {
            let h = d.head_mass(r);
            assert!(h >= prev);
            prev = h;
        }
    }

    #[test]
    fn head_mass_matches_pmf_partial_sums() {
        let d = dist(64, 1.2);
        let mut acc = 0.0;
        for r in 1..=64 {
            acc += d.prob(r);
            assert!((d.head_mass(r) - acc).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_scenario_head_is_heavy() {
        // With α = 1.2 over 40 000 keys, a small head carries most queries
        // (the effect behind Fig. 3: "even a small index can answer a high
        // percentage of queries").
        let d = dist(40_000, 1.2);
        let one_percent = d.head_mass(400);
        assert!(one_percent > 0.55, "top 1% should cover >55% of queries, got {one_percent}");
    }

    #[test]
    fn sampling_matches_pmf() {
        let d = dist(50, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let n_draws = 200_000usize;
        let mut counts = vec![0u32; 51];
        for _ in 0..n_draws {
            let r = d.sample(&mut rng);
            assert!((1..=50).contains(&r));
            counts[r] += 1;
        }
        // Chi-square-ish sanity: empirical frequency within 5 standard
        // deviations of expectation for the head ranks.
        for (r, &count) in counts.iter().enumerate().take(11).skip(1) {
            let p = d.prob(r);
            let expect = p * n_draws as f64;
            let sd = (n_draws as f64 * p * (1.0 - p)).sqrt();
            let got = f64::from(count);
            assert!(
                (got - expect).abs() < 5.0 * sd,
                "rank {r}: got {got}, expected {expect} ± {sd}"
            );
        }
    }

    #[test]
    fn ranks_for_mass_is_consistent() {
        let d = dist(1000, 1.2);
        for &t in &[0.1, 0.5, 0.9, 0.99] {
            let r = d.ranks_for_mass(t);
            assert!(d.head_mass(r) >= t);
            if r > 1 {
                assert!(d.head_mass(r - 1) < t);
            }
        }
        assert_eq!(d.ranks_for_mass(0.0), 0);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(ZipfDistribution::new(0, 1.2).is_err());
        assert!(ZipfDistribution::new(10, f64::NAN).is_err());
        assert!(ZipfDistribution::new(10, -0.5).is_err());
    }

    #[test]
    fn single_key_degenerate_case() {
        let d = dist(1, 1.2);
        assert_eq!(d.prob(1), 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(d.sample(&mut rng), 1);
    }
}
