//! Kahan–Babuška compensated summation.
//!
//! The model sums ~40 000 Zipf terms whose magnitudes span five orders of
//! magnitude; naive `f64` accumulation loses digits that matter when
//! comparing strategies near their crossover points.

/// A compensated accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one term.
    #[inline]
    pub fn add(&mut self, x: f64) {
        // Neumaier's variant: robust when |x| > |sum|.
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn total(&self) -> f64 {
        self.sum + self.compensation
    }
}

/// Sums an iterator with compensation.
pub fn kahan_sum<I: IntoIterator<Item = f64>>(iter: I) -> f64 {
    let mut acc = KahanSum::new();
    for x in iter {
        acc.add(x);
    }
    acc.total()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_on_benign_input() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let naive: f64 = xs.iter().sum();
        assert_eq!(kahan_sum(xs), naive);
    }

    #[test]
    fn recovers_catastrophic_cancellation() {
        // 1 + 1e100 - 1e100 == 1 exactly with compensation (Neumaier),
        // while naive summation returns 0.
        let xs = [1.0, 1e100, -1e100];
        let naive: f64 = xs.iter().sum();
        assert_eq!(naive, 0.0);
        assert_eq!(kahan_sum(xs), 1.0);
    }

    #[test]
    fn many_small_terms_do_not_drift() {
        // 10^7 terms of 0.1: naive drifts by ~1e-2 relative; Kahan stays
        // within a few ulps of the exact 1e6.
        let n = 10_000_000usize;
        let mut acc = KahanSum::new();
        for _ in 0..n {
            acc.add(0.1);
        }
        let exact = n as f64 * 0.1;
        assert!((acc.total() - exact).abs() < 1e-6, "compensated error too large");
    }
}
