//! Zipf query-popularity machinery.
//!
//! The paper assumes queries are Zipf-distributed with parameter `α`
//! (Section 2, citing \[Srip01\] which measured `α = 1.2` on Gnutella). This
//! crate provides:
//!
//! * [`ZipfDistribution`] — exact pmf/cdf of Eq. 3, head-mass sums (Eq. 5),
//!   and O(log n) CDF-inversion sampling,
//! * [`round`] — the per-round probability algebra of Eq. 4, 14 and 15
//!   (probability of ≥ 1 query per round, TTL-admission hit probability and
//!   expected index size),
//! * [`shift`] — popularity-shift maps used to test query-adaptivity
//!   (Section 5.2 / Section 6 claims),
//! * [`kahan`] — compensated summation, so 40 000-term sums of wildly
//!   varying magnitude stay exact to ~1 ulp.

pub mod dist;
pub mod kahan;
pub mod round;
pub mod shift;

pub use dist::ZipfDistribution;
pub use round::{expected_index_size_ttl, p_indexed_ttl, prob_queried_in_round, RoundModel};
pub use shift::{PopularityShift, RankMap};
