//! Per-round query probability algebra (Eq. 4, 14, 15).
//!
//! With `numPeers` peers each issuing `fQry` queries per second, a round
//! (1 s) carries `Q = numPeers · fQry` queries. The paper treats `Q` as the
//! exponent of Eq. 4 (a binomial "at least one query" probability):
//!
//! * Eq. 4  `probT(rank) = 1 − (1 − prob(rank))^Q`
//! * Eq. 14 `pIndxd = Σ_rank prob(rank) · (1 − (1 − probT(rank))^keyTtl)`
//! * Eq. 15 `indexSize = Σ_rank (1 − (1 − probT(rank))^keyTtl)`
//!
//! All powers are evaluated as `exp(e · ln1p(−p))` so tiny probabilities of
//! tail keys don't underflow to 0 or round to 1.

use crate::dist::ZipfDistribution;
use crate::kahan::KahanSum;

/// Numerically stable `(1 − p)^e` for `p ∈ [0, 1]`, `e ≥ 0`.
#[inline]
pub fn pow_one_minus(p: f64, e: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
    debug_assert!(e >= 0.0, "exponent must be non-negative");
    if p >= 1.0 {
        // (1-1)^0 = 1 by convention; otherwise 0.
        return if e == 0.0 { 1.0 } else { 0.0 };
    }
    f64::exp(e * f64::ln_1p(-p))
}

/// Eq. 4: probability that the key at `rank` is queried at least once in a
/// round carrying `queries_per_round` total queries.
#[inline]
pub fn prob_queried_in_round(dist: &ZipfDistribution, rank: usize, queries_per_round: f64) -> f64 {
    1.0 - pow_one_minus(dist.prob(rank), queries_per_round)
}

/// Eq. 14: probability that a random Zipf query can be answered from a
/// TTL-admitted index (the key was queried at least once in the last
/// `key_ttl` rounds).
pub fn p_indexed_ttl(dist: &ZipfDistribution, queries_per_round: f64, key_ttl: f64) -> f64 {
    let mut acc = KahanSum::new();
    for rank in 1..=dist.n() {
        let prob_t = prob_queried_in_round(dist, rank, queries_per_round);
        acc.add(dist.prob(rank) * (1.0 - pow_one_minus(prob_t, key_ttl)));
    }
    acc.total()
}

/// Eq. 15: expected number of keys resident in a TTL-admitted index.
pub fn expected_index_size_ttl(
    dist: &ZipfDistribution,
    queries_per_round: f64,
    key_ttl: f64,
) -> f64 {
    let mut acc = KahanSum::new();
    for rank in 1..=dist.n() {
        let prob_t = prob_queried_in_round(dist, rank, queries_per_round);
        acc.add(1.0 - pow_one_minus(prob_t, key_ttl));
    }
    acc.total()
}

/// Bundles a distribution with a per-round query volume, the unit in which
/// the model reasons (Section 2).
#[derive(Clone, Debug)]
pub struct RoundModel {
    dist: ZipfDistribution,
    queries_per_round: f64,
}

impl RoundModel {
    /// Creates the model; `queries_per_round = numPeers · fQry`.
    ///
    /// # Errors
    /// Propagates distribution construction errors; rejects negative or
    /// non-finite query volumes.
    pub fn new(keys: usize, alpha: f64, queries_per_round: f64) -> pdht_types::Result<RoundModel> {
        if !queries_per_round.is_finite() || queries_per_round < 0.0 {
            return Err(pdht_types::PdhtError::InvalidConfig {
                param: "queries_per_round",
                reason: format!("must be finite and >= 0, got {queries_per_round}"),
            });
        }
        Ok(RoundModel { dist: ZipfDistribution::new(keys, alpha)?, queries_per_round })
    }

    /// The underlying Zipf distribution.
    pub fn dist(&self) -> &ZipfDistribution {
        &self.dist
    }

    /// Total queries per round (`numPeers · fQry`).
    pub fn queries_per_round(&self) -> f64 {
        self.queries_per_round
    }

    /// Eq. 4 for this model.
    pub fn prob_t(&self, rank: usize) -> f64 {
        prob_queried_in_round(&self.dist, rank, self.queries_per_round)
    }

    /// Largest rank whose Eq. 4 probability is ≥ `f_min`; 0 if none.
    /// `probT` is monotone non-increasing in rank, so binary search applies.
    pub fn max_rank(&self, f_min: f64) -> usize {
        let n = self.dist.n();
        if self.prob_t(1) < f_min {
            return 0;
        }
        if self.prob_t(n) >= f_min {
            return n;
        }
        // Invariant: probT(lo) >= f_min > probT(hi).
        let (mut lo, mut hi) = (1usize, n);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.prob_t(mid) >= f_min {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Eq. 14 for this model.
    pub fn p_indexed_ttl(&self, key_ttl: f64) -> f64 {
        p_indexed_ttl(&self.dist, self.queries_per_round, key_ttl)
    }

    /// Eq. 15 for this model.
    pub fn expected_index_size_ttl(&self, key_ttl: f64) -> f64 {
        expected_index_size_ttl(&self.dist, self.queries_per_round, key_ttl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(keys: usize, alpha: f64, q: f64) -> RoundModel {
        RoundModel::new(keys, alpha, q).expect("valid")
    }

    #[test]
    fn pow_one_minus_edge_cases() {
        assert_eq!(pow_one_minus(0.0, 100.0), 1.0);
        assert_eq!(pow_one_minus(1.0, 100.0), 0.0);
        assert_eq!(pow_one_minus(1.0, 0.0), 1.0);
        assert!((pow_one_minus(0.5, 2.0) - 0.25).abs() < 1e-12);
        // Tiny p, huge e: must not collapse to exactly 1 or 0 incorrectly.
        let v = pow_one_minus(1e-12, 1e6);
        assert!((v - (1.0 - 1e-6)).abs() < 1e-9);
    }

    #[test]
    fn prob_t_monotone_in_rank_and_volume() {
        let m = model(1000, 1.2, 50.0);
        for r in 1..1000 {
            assert!(m.prob_t(r) >= m.prob_t(r + 1));
        }
        let busier = model(1000, 1.2, 500.0);
        for r in [1usize, 10, 100, 999] {
            assert!(busier.prob_t(r) >= m.prob_t(r));
        }
    }

    #[test]
    fn zero_volume_means_never_queried() {
        let m = model(100, 1.2, 0.0);
        for r in [1usize, 50, 100] {
            assert_eq!(m.prob_t(r), 0.0);
        }
        assert_eq!(m.max_rank(0.001), 0);
        assert_eq!(m.p_indexed_ttl(100.0), 0.0);
        assert_eq!(m.expected_index_size_ttl(100.0), 0.0);
    }

    #[test]
    fn max_rank_is_the_threshold_rank() {
        let m = model(40_000, 1.2, 20_000.0 / 30.0);
        let f_min = 0.01;
        let r = m.max_rank(f_min);
        assert!(r > 0 && r < 40_000);
        assert!(m.prob_t(r) >= f_min);
        assert!(m.prob_t(r + 1) < f_min);
    }

    #[test]
    fn max_rank_extremes() {
        let m = model(100, 1.2, 1000.0);
        // Threshold so low every key qualifies.
        assert_eq!(m.max_rank(1e-12), 100);
        // Threshold above 1: nothing qualifies.
        assert_eq!(m.max_rank(1.1), 0);
    }

    #[test]
    fn max_rank_monotone_in_query_volume() {
        let f_min = 0.005;
        let mut prev = 0;
        for q in [1.0, 10.0, 100.0, 1000.0, 10_000.0] {
            let m = model(10_000, 1.2, q);
            let r = m.max_rank(f_min);
            assert!(r >= prev, "maxRank must grow with query volume");
            prev = r;
        }
    }

    #[test]
    fn ttl_sums_behave_at_extremes() {
        let m = model(500, 1.2, 100.0);
        // keyTtl = 0: nothing stays in the index.
        assert!(m.p_indexed_ttl(0.0).abs() < 1e-12);
        assert!(m.expected_index_size_ttl(0.0).abs() < 1e-12);
        // Huge keyTtl: practically everything ever queried is resident;
        // pIndxd approaches 1 and size approaches n (for keys with
        // probT > 0, which is all of them at this volume).
        assert!(m.p_indexed_ttl(1e9) > 0.999);
        assert!(m.expected_index_size_ttl(1e9) > 499.0);
    }

    #[test]
    fn ttl_sums_monotone_in_ttl() {
        let m = model(2_000, 1.2, 200.0);
        let ttls = [1.0, 10.0, 100.0, 1000.0];
        let mut prev_p = -1.0;
        let mut prev_s = -1.0;
        for &t in &ttls {
            let p = m.p_indexed_ttl(t);
            let s = m.expected_index_size_ttl(t);
            assert!(p >= prev_p && s >= prev_s);
            prev_p = p;
            prev_s = s;
        }
    }

    #[test]
    fn p_indexed_exceeds_size_fraction_under_zipf() {
        // The head is queried disproportionately often, so the query-mass
        // covered must exceed the key-count fraction resident (Fig. 3's gap).
        let m = model(40_000, 1.2, 20_000.0 / 300.0);
        let ttl = 600.0;
        let p = m.p_indexed_ttl(ttl);
        let frac = m.expected_index_size_ttl(ttl) / 40_000.0;
        assert!(p > frac * 2.0, "pIndxd={p} should dominate size fraction={frac}");
    }

    #[test]
    fn invalid_volume_rejected() {
        assert!(RoundModel::new(10, 1.2, f64::NAN).is_err());
        assert!(RoundModel::new(10, 1.2, -1.0).is_err());
    }
}
