//! Popularity shift: remapping ranks to keys over time.
//!
//! The paper motivates partial indexing with metadata whose popularity "can
//! dramatically change over time" (Sections 1 and 6) and claims the
//! selection algorithm adapts (Section 5.2). We model this by composing the
//! static Zipf rank distribution with a time-varying *rank map*: the sampler
//! draws a rank, the map says which concrete key currently occupies it.

use rand::seq::SliceRandom;
use rand::Rng;

/// A bijection from Zipf rank (1-based) to key index (0-based).
#[derive(Clone, Debug)]
pub enum RankMap {
    /// Rank `r` maps to key `r − 1` — the initial, unshifted assignment.
    Identity {
        /// Number of keys.
        n: usize,
    },
    /// Ranks rotate by `offset`: the previously `offset`-th most popular key
    /// family becomes the head. Models gradual drift.
    Rotation {
        /// Number of keys.
        n: usize,
        /// Rotation offset in ranks.
        offset: usize,
    },
    /// An arbitrary permutation (e.g. a fresh random reshuffle). Models an
    /// abrupt interest change such as breaking news.
    Permutation {
        /// `perm[rank-1]` = key index.
        perm: Vec<u32>,
    },
}

impl RankMap {
    /// Identity map over `n` keys.
    pub fn identity(n: usize) -> RankMap {
        RankMap::Identity { n }
    }

    /// Rotation by `offset` ranks over `n` keys.
    pub fn rotation(n: usize, offset: usize) -> RankMap {
        RankMap::Rotation { n, offset: offset % n.max(1) }
    }

    /// A uniformly random permutation over `n` keys.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> RankMap {
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(rng);
        RankMap::Permutation { perm }
    }

    /// Number of keys.
    pub fn n(&self) -> usize {
        match self {
            RankMap::Identity { n } | RankMap::Rotation { n, .. } => *n,
            RankMap::Permutation { perm } => perm.len(),
        }
    }

    /// Key index currently occupying `rank` (1-based).
    ///
    /// # Panics
    /// Panics if `rank` is 0 or out of range.
    #[inline]
    pub fn key_for_rank(&self, rank: usize) -> usize {
        let n = self.n();
        assert!((1..=n).contains(&rank), "rank {rank} out of 1..={n}");
        match self {
            RankMap::Identity { .. } => rank - 1,
            RankMap::Rotation { n, offset } => (rank - 1 + offset) % n,
            RankMap::Permutation { perm } => perm[rank - 1] as usize,
        }
    }
}

/// A schedule of rank maps: which map is active at each round.
#[derive(Clone, Debug)]
pub struct PopularityShift {
    /// `(start_round, map)` pairs, sorted by `start_round`; the first entry
    /// must start at round 0.
    epochs: Vec<(u64, RankMap)>,
}

impl PopularityShift {
    /// A schedule that never shifts.
    pub fn none(n: usize) -> PopularityShift {
        PopularityShift { epochs: vec![(0, RankMap::identity(n))] }
    }

    /// Builds a schedule from `(start_round, map)` pairs.
    ///
    /// # Errors
    /// Errors if the list is empty, unsorted, doesn't start at round 0, or
    /// maps differ in key count.
    pub fn new(epochs: Vec<(u64, RankMap)>) -> pdht_types::Result<PopularityShift> {
        if epochs.is_empty() {
            return Err(pdht_types::PdhtError::InvalidConfig {
                param: "epochs",
                reason: "schedule must contain at least one epoch".into(),
            });
        }
        if epochs[0].0 != 0 {
            return Err(pdht_types::PdhtError::InvalidConfig {
                param: "epochs",
                reason: "first epoch must start at round 0".into(),
            });
        }
        let n = epochs[0].1.n();
        for w in epochs.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(pdht_types::PdhtError::InvalidConfig {
                    param: "epochs",
                    reason: "epoch start rounds must be strictly increasing".into(),
                });
            }
        }
        if epochs.iter().any(|(_, m)| m.n() != n) {
            return Err(pdht_types::PdhtError::InvalidConfig {
                param: "epochs",
                reason: "all rank maps must cover the same number of keys".into(),
            });
        }
        Ok(PopularityShift { epochs })
    }

    /// The map active at `round`.
    pub fn map_at(&self, round: u64) -> &RankMap {
        // Last epoch whose start <= round.
        let i = self.epochs.partition_point(|(start, _)| *start <= round);
        &self.epochs[i - 1].1
    }

    /// Key index for a sampled `rank` at `round`.
    #[inline]
    pub fn key_for(&self, rank: usize, round: u64) -> usize {
        self.map_at(round).key_for_rank(rank)
    }

    /// Rounds at which the active map changes (excluding round 0).
    pub fn shift_points(&self) -> impl Iterator<Item = u64> + '_ {
        self.epochs.iter().skip(1).map(|(s, _)| *s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn identity_maps_rank_to_adjacent_index() {
        let m = RankMap::identity(10);
        assert_eq!(m.key_for_rank(1), 0);
        assert_eq!(m.key_for_rank(10), 9);
    }

    #[test]
    fn rotation_wraps() {
        let m = RankMap::rotation(10, 3);
        assert_eq!(m.key_for_rank(1), 3);
        assert_eq!(m.key_for_rank(8), 0);
        assert_eq!(m.key_for_rank(10), 2);
    }

    #[test]
    fn rotation_offset_reduced_modulo_n() {
        let m = RankMap::rotation(10, 13);
        assert_eq!(m.key_for_rank(1), 3);
    }

    #[test]
    fn random_map_is_a_bijection() {
        let mut rng = SmallRng::seed_from_u64(5);
        let m = RankMap::random(100, &mut rng);
        let mut seen = [false; 100];
        for rank in 1..=100 {
            let k = m.key_for_rank(rank);
            assert!(!seen[k], "key {k} mapped twice");
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn schedule_selects_correct_epoch() {
        let s = PopularityShift::new(vec![
            (0, RankMap::identity(10)),
            (100, RankMap::rotation(10, 5)),
            (200, RankMap::rotation(10, 9)),
        ])
        .expect("valid schedule");
        assert_eq!(s.key_for(1, 0), 0);
        assert_eq!(s.key_for(1, 99), 0);
        assert_eq!(s.key_for(1, 100), 5);
        assert_eq!(s.key_for(1, 199), 5);
        assert_eq!(s.key_for(1, 200), 9);
        assert_eq!(s.key_for(1, 10_000), 9);
        let points: Vec<u64> = s.shift_points().collect();
        assert_eq!(points, vec![100, 200]);
    }

    #[test]
    fn schedule_validation() {
        assert!(PopularityShift::new(vec![]).is_err());
        assert!(PopularityShift::new(vec![(5, RankMap::identity(4))]).is_err());
        assert!(PopularityShift::new(vec![(0, RankMap::identity(4)), (0, RankMap::identity(4)),])
            .is_err());
        assert!(PopularityShift::new(vec![(0, RankMap::identity(4)), (10, RankMap::identity(5)),])
            .is_err());
    }

    #[test]
    fn none_schedule_never_shifts() {
        let s = PopularityShift::none(7);
        assert_eq!(s.shift_points().count(), 0);
        assert_eq!(s.key_for(3, 0), 2);
        assert_eq!(s.key_for(3, 1_000_000), 2);
    }
}
