//! Property tests for the Zipf machinery over arbitrary parameters.

use pdht_zipf::{PopularityShift, RankMap, RoundModel, ZipfDistribution};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// The pmf is a proper, monotone distribution for any (n, α).
    #[test]
    fn pmf_is_a_distribution(n in 1usize..5_000, alpha in 0.0f64..2.5) {
        let d = ZipfDistribution::new(n, alpha).unwrap();
        let total: f64 = (1..=n).map(|r| d.prob(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sums to {total}");
        for r in 1..n {
            prop_assert!(d.prob(r) >= d.prob(r + 1));
        }
        prop_assert!((d.head_mass(n) - 1.0).abs() < 1e-9);
    }

    /// Sampling always lands in range and never panics.
    #[test]
    fn sampling_in_range(n in 1usize..2_000, alpha in 0.0f64..2.0, seed in any::<u64>()) {
        let d = ZipfDistribution::new(n, alpha).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..100 {
            let r = d.sample(&mut rng);
            prop_assert!((1..=n).contains(&r));
        }
    }

    /// Eq. 4/14/15 stay inside their probability/size domains and are
    /// monotone in TTL for any load.
    #[test]
    fn round_model_domains(
        n in 1usize..2_000,
        alpha in 0.2f64..2.0,
        q in 0.0f64..10_000.0,
        ttl in 0.0f64..100_000.0,
    ) {
        let m = RoundModel::new(n, alpha, q).unwrap();
        for r in [1usize, n / 2 + 1, n] {
            let p = m.prob_t(r);
            prop_assert!((0.0..=1.0).contains(&p));
        }
        let p_hit = m.p_indexed_ttl(ttl);
        let size = m.expected_index_size_ttl(ttl);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&p_hit));
        prop_assert!((0.0..=n as f64 + 1e-6).contains(&size));
        // Doubling the TTL can only help.
        prop_assert!(m.p_indexed_ttl(ttl * 2.0) >= p_hit - 1e-12);
        prop_assert!(m.expected_index_size_ttl(ttl * 2.0) >= size - 1e-9);
    }

    /// `max_rank` is the true threshold: everything at or above clears
    /// `f_min`, everything below does not.
    #[test]
    fn max_rank_is_exact_threshold(
        n in 2usize..2_000,
        alpha in 0.3f64..2.0,
        q in 0.1f64..5_000.0,
        f_min in 1e-6f64..1.0,
    ) {
        let m = RoundModel::new(n, alpha, q).unwrap();
        let r = m.max_rank(f_min);
        if r > 0 {
            prop_assert!(m.prob_t(r) >= f_min);
        }
        if r < n {
            prop_assert!(m.prob_t(r + 1) < f_min);
        }
    }

    /// Every rank map is a bijection and shift schedules never lose keys.
    #[test]
    fn rank_maps_are_bijections(n in 1usize..500, offset in any::<usize>(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for map in [
            RankMap::identity(n),
            RankMap::rotation(n, offset),
            RankMap::random(n, &mut rng),
        ] {
            let mut seen = vec![false; n];
            for rank in 1..=n {
                let k = map.key_for_rank(rank);
                prop_assert!(k < n);
                prop_assert!(!seen[k], "key {k} mapped twice");
                seen[k] = true;
            }
        }
    }

    /// The active epoch is always the latest one whose start has passed.
    #[test]
    fn shift_schedule_selection(
        n in 2usize..100,
        starts in prop::collection::btree_set(1u64..10_000, 1..6),
        probe in 0u64..20_000,
    ) {
        let mut epochs: Vec<(u64, RankMap)> = vec![(0, RankMap::identity(n))];
        for (i, &s) in starts.iter().enumerate() {
            epochs.push((s, RankMap::rotation(n, i + 1)));
        }
        let schedule = PopularityShift::new(epochs.clone()).unwrap();
        let expected_idx = epochs.iter().rposition(|&(s, _)| s <= probe).unwrap();
        let expect_key = epochs[expected_idx].1.key_for_rank(1);
        prop_assert_eq!(schedule.key_for(1, probe), expect_key);
    }
}
