//! Query-adaptivity under a popularity shift (Sections 5.2 and 6).
//!
//! ```text
//! cargo run --release --example adaptive_shift
//! ```
//!
//! Halfway through the run the query distribution rotates: the keys nobody
//! cared about become the new head (imagine breaking news displacing last
//! week's stories). Watch the hit rate dip and recover while the set of
//! indexed keys turns over — with zero coordination.

use pdht::core::{PdhtConfig, PdhtNetwork, Strategy, TtlPolicy};
use pdht::model::Scenario;
use pdht::zipf::{PopularityShift, RankMap};

fn main() {
    let scenario = Scenario::table1_scaled(20); // 1 000 peers, 2 000 keys
    let keys = scenario.keys as usize;
    let shift_round = 250u64;
    let total = 600u64;

    let shift = PopularityShift::new(vec![
        (0, RankMap::identity(keys)),
        (shift_round, RankMap::rotation(keys, keys / 2)),
    ])
    .expect("valid schedule");

    let mut cfg = PdhtConfig::new(scenario, 1.0 / 30.0, Strategy::Partial);
    cfg.shift = Some(shift);
    cfg.ttl_policy = TtlPolicy::Fixed(100);
    cfg.purge_stride = 4;

    let mut net = PdhtNetwork::new(cfg).expect("network builds");
    println!("round window | hit rate | indexed keys");
    println!("-------------+----------+-------------");
    let window = 25u64;
    for start in (0..total).step_by(window as usize) {
        net.run(window);
        let end = start + window - 1;
        let rep = net.report(start, end);
        let marker = if (start..start + window).contains(&shift_round) {
            "  <-- popularity shift"
        } else {
            ""
        };
        println!(
            "{:>5}..{:<5} |   {:.3}  | {:>8.0}{marker}",
            start, end, rep.p_indexed, rep.indexed_keys
        );
    }

    let before = net.report(shift_round - 2 * window, shift_round - window - 1).p_indexed;
    let during = net.report(shift_round, shift_round + window - 1).p_indexed;
    let after = net.report(total - window, total - 1).p_indexed;
    println!(
        "\nhit rate: {before:.3} before shift, {during:.3} right after, {after:.3} at the end"
    );
    println!("the TTL index re-learned the new head on its own — the paper's adaptivity claim.");
}
