//! Tuning index admission — the extension to the paper's §5.1 limitation.
//!
//! ```text
//! cargo run --release --example admission_tuning
//! ```
//!
//! The paper's selection algorithm admits every missed key, so one-hit
//! wonders from the Zipf tail buy a full insert flood and then expire
//! unused. Second-chance admission makes a key *prove* a repeat query
//! first. This example runs both on the same workload and prints the trade.

use pdht::core::{AdmissionPolicy, PdhtConfig, PdhtNetwork, Strategy, TtlPolicy};
use pdht::model::Scenario;
use pdht::types::MessageKind;

fn run(policy: AdmissionPolicy) -> pdht::core::SimReport {
    let mut cfg = PdhtConfig::new(Scenario::table1_scaled(20), 1.0 / 45.0, Strategy::Partial);
    cfg.admission = policy;
    cfg.ttl_policy = TtlPolicy::Fixed(200);
    cfg.seed = 0x7_11;
    let mut net = PdhtNetwork::new(cfg).expect("network builds");
    net.run(500);
    net.report(250, 499)
}

fn main() {
    println!("policy                     | msg/round | hit rate | indexed keys | walks/round");
    println!("---------------------------+-----------+----------+--------------+------------");
    for (label, policy) in [
        ("always (paper)           ", AdmissionPolicy::Always),
        ("second-chance, window 200", AdmissionPolicy::SecondChance { window_rounds: 200 }),
        ("second-chance, window 40 ", AdmissionPolicy::SecondChance { window_rounds: 40 }),
    ] {
        let rep = run(policy);
        let walks: f64 =
            rep.by_kind.iter().filter(|(k, _)| *k == MessageKind::WalkStep).map(|&(_, v)| v).sum();
        println!(
            "{label} | {:>9.0} | {:>8.3} | {:>12.0} | {:>10.0}",
            rep.msgs_per_round, rep.p_indexed, rep.indexed_keys, walks
        );
    }
    println!();
    println!("Shorter windows are stricter gatekeepers: the index shrinks and insert");
    println!("floods disappear, but repeat keys pay a second broadcast before being");
    println!("admitted. The sweet spot depends on cSUnstr vs repl·dup2 — exactly the");
    println!("quantities the paper's Eq. 16/17 put on opposite sides of the ledger.");
}
