//! The partial DHT under realistic churn (Section 3.3.1).
//!
//! ```text
//! cargo run --release --example churn_resilience
//! ```
//!
//! Runs the selection algorithm with Gnutella-like session churn (mean
//! online 60 min / offline 40 min ⇒ 60 % availability) and shows that the
//! system keeps answering: probing repairs routing tables, replica floods
//! paper over desynchronized replicas, and the broadcast fallback catches
//! whatever the index cannot serve.

use pdht::core::{PdhtConfig, PdhtNetwork, Strategy, TtlPolicy};
use pdht::model::Scenario;
use pdht::overlay::ChurnConfig;
use pdht::types::MessageKind;

fn main() {
    let scenario = Scenario::table1_scaled(20); // 1 000 peers

    // Aggressive churn so the effect is visible in a short run: sessions of
    // ~10 min, absences of ~7 min (same 0.6 availability as the Gnutella
    // default, 6× the toggle rate).
    let churn = ChurnConfig { mean_online_secs: 600.0, mean_offline_secs: 400.0 };

    let mut cfg = PdhtConfig::new(scenario, 1.0 / 30.0, Strategy::Partial);
    cfg.churn = churn;
    cfg.ttl_policy = TtlPolicy::Fixed(150);
    cfg.purge_stride = 4;

    let mut net = PdhtNetwork::new(cfg).expect("network builds");
    let rounds = 600;
    net.run(rounds);

    let rep = net.report(rounds / 2, rounds - 1);
    println!("steady state under churn (rounds {}..{}):", rep.rounds.0, rep.rounds.1);
    println!(
        "  availability            : {:.3} (theory: {:.3})",
        rep.availability,
        churn.availability()
    );
    println!("  index hit probability   : {:.3}", rep.p_indexed);
    println!("  distinct indexed keys   : {:.0}", rep.indexed_keys);
    println!("  messages per round      : {:.0}", rep.msgs_per_round);
    println!("  queries from offline peers (skipped): {}", rep.skipped_offline);
    println!("  broadcast search failures            : {}", rep.search_failures);
    println!("  index routing failures               : {}", rep.lookup_failures);
    println!("  stale hits (version lag)             : {}", rep.stale_hits);

    let probes: f64 =
        rep.by_kind.iter().filter(|(k, _)| *k == MessageKind::Probe).map(|&(_, v)| v).sum();
    println!("\nmaintenance probes/round: {probes:.0} — the [MaCa03]-style probing that");
    println!("keeps routing usable while 40% of the population is offline at any time.");

    let total_queries =
        rep.skipped_offline as f64 + rep.search_failures as f64 + (rep.p_indexed * 1.0).max(0.0); // denominators differ; report rates instead:
    let _ = total_queries;
    println!(
        "\nverdict: {} — hit rate {:.0}% at {:.0}% availability",
        if rep.p_indexed > 0.6 && rep.lookup_failures < 1000 {
            "the partial index stays useful under heavy churn"
        } else {
            "churn is degrading the index — inspect the report"
        },
        rep.p_indexed * 100.0,
        rep.availability * 100.0,
    );
}
