//! Interactive-style tour of the analytical model: what makes a key worth
//! indexing? (Sections 2–4.)
//!
//! ```text
//! cargo run --release --example cost_model_explorer
//! ```
//!
//! Sweeps the model's levers one at a time around the Table 1 operating
//! point and prints how the indexing threshold `fMin`, the worthwhile head
//! `maxRank` and the strategy ordering respond. Useful to build intuition
//! for Eq. 1–13 before reading the code.

use pdht::model::{IdealPartial, Scenario, StrategyCosts};

fn show(scenario: &Scenario, f_qry: f64, label: &str) {
    let ideal = IdealPartial::solve(scenario, f_qry).expect("model solves");
    let costs = StrategyCosts::evaluate(scenario, f_qry).expect("model evaluates");
    let winner = if costs.partial_ideal <= costs.index_all.min(costs.no_index) {
        "partial"
    } else if costs.index_all <= costs.no_index {
        "indexAll"
    } else {
        "noIndex"
    };
    println!(
        "{label:<38} fMin={:.2e}  maxRank={:>6}  pIndxd={:.3}  partial={:>8.0}  indexAll={:>8.0}  noIndex={:>8.0}  winner={winner}",
        ideal.f_min, ideal.max_rank, ideal.p_indexed, costs.partial_ideal, costs.index_all, costs.no_index
    );
}

fn main() {
    let base = Scenario::table1();
    let f_qry = 1.0 / 300.0;

    println!("== the Table 1 operating point ==");
    show(&base, f_qry, "baseline (Table 1, fQry = 1/300)");

    println!("\n== lever 1: query load ==");
    for &f in &[1.0 / 30.0, 1.0 / 300.0, 1.0 / 7200.0] {
        show(&base, f, &format!("fQry = 1/{:.0}", 1.0 / f));
    }

    println!("\n== lever 2: Zipf skew (α) ==");
    for alpha in [0.6, 0.9, 1.2, 1.5] {
        let s = Scenario { alpha, ..base.clone() };
        show(&s, f_qry, &format!("alpha = {alpha}"));
    }
    println!("flatter distributions (small α) spread queries over more keys, so more");
    println!("keys clear the bar individually but each hit saves the same — the index");
    println!("covers less query mass (pIndxd falls).");

    println!("\n== lever 3: replication factor ==");
    for repl in [10u32, 50, 200] {
        let s = Scenario { repl, ..base.clone() };
        show(&s, f_qry, &format!("repl = {repl}"));
    }
    println!("more replicas make broadcast search cheaper (Eq. 6) *and* updates");
    println!("costlier, so the index has to earn more per key: fMin rises.");

    println!("\n== lever 4: churn burden (env) ==");
    for denom in [7.0, 14.0, 56.0] {
        let s = Scenario { env: 1.0 / denom, ..base.clone() };
        show(&s, f_qry, &format!("env = 1/{denom}"));
    }
    println!("a calmer network (small env) makes holding keys cheap — the index");
    println!("grows; heavy churn shrinks the worthwhile head. This is the paper's");
    println!("central observation: maintenance cost, not storage, limits indexing.");
}
