//! The paper's motivating application: a decentralized news system
//! (Sections 1 and 4).
//!
//! ```text
//! cargo run --release --example news_system
//! ```
//!
//! Walks the whole metadata pipeline: generate articles with element-value
//! metadata, extract hashed keys ([FeBi04]-style, stop words removed),
//! build the global key catalog, and then let the cost model decide — for
//! concrete keys like the paper's `title=Weather Iráklion` example —
//! whether each is worth indexing at the current query load.

use pdht::core::{PartialIndex, Ttl};
use pdht::gossip::VersionedValue;
use pdht::model::{CostModel, IdealPartial, Scenario};
use pdht::types::{Key, RngStreams};
use pdht::workload::{KeyCatalog, NewsGenerator};
use pdht::zipf::ZipfDistribution;

fn main() {
    let streams = RngStreams::new(2004);
    let mut rng = streams.stream("news");

    // 1. Publish 500 articles.
    let mut generator = NewsGenerator::new();
    let articles = generator.articles(500, &mut rng);
    println!("published {} articles; sample metadata:", articles.len());
    for (e, v) in &articles[0].attrs {
        println!("  {e} = {v}");
    }

    // 2. Extract the indexable keys.
    let catalog = KeyCatalog::build(&articles);
    println!(
        "\nkey catalog: {} unique keys (20 raw per article, shared metadata dedupes)",
        catalog.len()
    );
    println!("sample keys of article 0:");
    for s in articles[0].key_strings().iter().take(6) {
        println!("  hash({s}) = {}", Key::hash_str(s));
    }

    // 3. The paper's Section 1 example: key1 (title AND date) is likely to
    //    be queried; key2 (size=2405) is not. Ask the model where the bar
    //    `fMin` sits and which Zipf ranks clear it.
    let scenario = Scenario { keys: catalog.len() as u32, ..Scenario::table1_scaled(20) };
    let f_qry = 1.0 / 120.0;
    let ideal = IdealPartial::solve(&scenario, f_qry).expect("model solves");
    let cost = CostModel::new(&scenario);
    println!("\ncost model at one query per peer per {:.0} s:", 1.0 / f_qry);
    println!(
        "  broadcast search costs {:.0} msg, index search {:.2} msg",
        cost.c_s_unstr(),
        ideal.c_s_indx
    );
    println!("  minimum query rate worth indexing (fMin) = {:.2e} per round", ideal.f_min);
    println!("  => worth indexing: the {} most queried keys of {}", ideal.max_rank, scenario.keys);
    println!("  => they answer {:.1}% of all queries", ideal.p_indexed * 100.0);

    // 4. Show the selection mechanism doing that *without* the model: a
    //    peer's local TTL store, fed a popular and an unpopular key.
    let zipf = ZipfDistribution::new(catalog.len(), scenario.alpha).expect("zipf");
    let popular_rank = 1;
    let unpopular_rank = catalog.len(); // the tail
    println!(
        "\nZipf(α = {}): rank {popular_rank} gets {:.1}% of queries, rank {unpopular_rank} gets {:.2e}%",
        scenario.alpha,
        zipf.prob(popular_rank) * 100.0,
        zipf.prob(unpopular_rank) * 100.0
    );

    let ttl = 50;
    let mut store = PartialIndex::new(100);
    let (hot_idx, hot) = (0u32, catalog.key(0));
    let (cold_idx, cold) = ((catalog.len() - 1) as u32, catalog.key(catalog.len() - 1));
    let value = |data: u64| VersionedValue { version: 1, data };
    store.insert(hot_idx, hot, value(0), 0, Ttl::Rounds(ttl));
    store.insert(cold_idx, cold, value(1), 0, Ttl::Rounds(ttl));
    // The hot key is queried every 20 rounds, the cold key never again.
    let mut purged = Vec::new();
    for now in 1..=200 {
        if now % 20 == 0 {
            store.get_and_refresh(hot_idx, now, Ttl::Rounds(ttl));
        }
        purged.clear();
        store.purge_expired_into(now, &mut purged);
    }
    println!("\nafter 200 rounds with keyTtl = {ttl}:");
    println!(
        "  '{}' (queried)    in index: {}",
        catalog.key_string(0),
        store.peek(hot_idx, 200).is_some()
    );
    println!(
        "  '{}' (never queried) in index: {}",
        catalog.key_string(catalog.len() - 1),
        store.peek(cold_idx, 200).is_some()
    );
    println!("\nThe TTL mechanism kept exactly the key worth keeping.");
}
