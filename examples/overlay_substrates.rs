//! Runs the selection algorithm on every structured-overlay substrate and
//! compares their traffic — the simulation counterpart of the paper's claim
//! (Section 1) that the analysis applies to any "traditional DHT".
//!
//! ```text
//! cargo run --release --example overlay_substrates
//! ```

use pdht::core::{OverlayKind, PdhtConfig, PdhtNetwork, Strategy};
use pdht::model::Scenario;
use pdht::types::MessageKind;

fn main() {
    let scenario = Scenario::table1_scaled(20); // 1 000 peers, 2 000 keys
    let rounds = 300;
    let warmup = 100;

    println!("substrate   msgs/round   p_indexed   indexed_keys   route_hops/round");
    for kind in OverlayKind::ALL {
        let mut cfg = PdhtConfig::new(scenario.clone(), 1.0 / 30.0, Strategy::Partial);
        cfg.overlay = kind;
        let mut net = PdhtNetwork::new(cfg).expect("network builds");
        net.run(rounds);
        let report = net.report(warmup, rounds - 1);
        let hops: f64 = report
            .by_kind
            .iter()
            .filter(|(k, _)| *k == MessageKind::RouteHop)
            .map(|&(_, v)| v)
            .sum();
        println!(
            "{:<11} {:>10.1} {:>11.3} {:>14.1} {:>18.1}",
            format!("{kind:?}"),
            report.msgs_per_round,
            report.p_indexed,
            report.indexed_keys,
            hops,
        );
    }
    println!();
    println!(
        "All substrates run the same engine; only routing constants differ \
         (trie resolves one bit per hop, Chord halves ring distance, \
         Kademlia greedily shrinks XOR distance over k-buckets)."
    );
}
