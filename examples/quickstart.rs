//! Quickstart: build a partial-DHT network, run it, read the report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Spins up a 1 000-peer network (a 1/20-scale Table 1 scenario), runs the
//! paper's TTL selection algorithm for 300 simulated seconds, and prints
//! what the model predicted next to what the network measured.

use pdht::core::{PdhtConfig, PdhtNetwork, Strategy};
use pdht::model::{Scenario, SelectionModel};

fn main() {
    // 1. Pick a scenario. `table1()` is the paper's exact evaluation
    //    setting (20 000 peers); the scaled variant keeps every ratio but
    //    runs in milliseconds.
    let scenario = Scenario::table1_scaled(20);
    let f_qry = 1.0 / 30.0; // one query per peer every 30 s — busy period

    // 2. Ask the analytical model what to expect (Eq. 14–17).
    let predicted = SelectionModel::evaluate(&scenario, f_qry).expect("model evaluates");
    println!("model: keyTtl = {:.0} rounds", predicted.key_ttl);
    println!("model: expected index size = {:.0} keys", predicted.index_size);
    println!("model: expected hit probability = {:.3}", predicted.p_indexed);
    println!("model: expected cost = {:.0} msg/s", predicted.total_cost);

    // 3. Build and run the real thing: trie DHT + unstructured overlay +
    //    replica flooding + TTL selection.
    let cfg = PdhtConfig::new(scenario, f_qry, Strategy::Partial);
    let mut net = PdhtNetwork::new(cfg).expect("network builds");
    println!(
        "\nnetwork: {} active DHT peers, keyTtl = {} rounds",
        net.num_active_peers(),
        net.ttl_rounds()
    );

    let rounds = 300;
    net.run(rounds);

    // 4. Read the steady-state window.
    let report = net.report(rounds / 2, rounds - 1);
    println!("\nmeasured over rounds {}..{}:", report.rounds.0, report.rounds.1);
    println!("  messages/round        : {:.0}", report.msgs_per_round);
    println!("  index hit probability : {:.3}", report.p_indexed);
    println!("  distinct indexed keys : {:.0}", report.indexed_keys);
    println!("  broadcast failures    : {}", report.search_failures);
    println!("\nby message kind:");
    for (kind, rate) in &report.by_kind {
        if *rate > 0.0 {
            println!("  {kind:>14} : {rate:>10.1}/round");
        }
    }

    println!(
        "\nThe index filled itself with the queried head of the Zipf\n\
         distribution — no one configured which keys to index. That is the\n\
         paper's contribution in one run."
    );
}
