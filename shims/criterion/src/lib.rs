//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset its benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is a plain wall-clock mean over a fixed iteration count — no
//! statistical analysis, outlier rejection, or HTML reports. Under
//! `cargo test` (or when the harness is invoked with `--test`) every
//! benchmark body runs exactly once, as a smoke test; `cargo bench` runs
//! the measured loop. Set `CRITERION_SHIM_ITERS` to override the iteration
//! count.

use std::time::Instant;

pub use std::hint::black_box;

/// Default measured iterations per benchmark in bench mode.
const DEFAULT_ITERS: u64 = 25;

/// The benchmark harness entry point.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` executes harness-less bench targets to check they
        // run; keep that mode to a single iteration per benchmark.
        let test_mode = std::env::args().any(|a| a == "--test");
        let iters = std::env::var("CRITERION_SHIM_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if test_mode { 1 } else { DEFAULT_ITERS });
        Criterion { iters: iters.max(1) }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.iters, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), iters: self.iters, _parent: self }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the shim's
    /// iteration count is global, so this caps it instead).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = self.iters.min(n as u64).max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.iters, f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.iters, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally carrying a parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to each benchmark body; [`Bencher::iter`] runs the measured loop.
pub struct Bencher {
    iters: u64,
    /// Total time spent inside `iter` across all iterations.
    elapsed_nanos: u128,
    /// Iterations actually executed.
    executed: u64,
}

/// Batch-size hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; the shim times per-iteration regardless).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_nanos += start.elapsed().as_nanos();
        self.executed += self.iters;
    }

    /// Times `routine` over fresh inputs from `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed_nanos += start.elapsed().as_nanos();
        }
        self.executed += self.iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, iters: u64, mut f: F) {
    let mut b = Bencher { iters, elapsed_nanos: 0, executed: 0 };
    f(&mut b);
    if b.executed > 0 {
        let per_iter = b.elapsed_nanos / u128::from(b.executed);
        println!("bench: {name:<48} {per_iter:>12} ns/iter ({} iters)", b.executed);
    } else {
        println!("bench: {name:<48} (no measured loop)");
    }
}

/// Declares a benchmark group function: `criterion_group!(benches, f, g)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the harness `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion { iters: 3 };
        let mut count = 0u64;
        c.bench_function("counts", |b| b.iter(|| count += 1));
        assert_eq!(count, 3);
    }

    #[test]
    fn groups_run_parameterized_benches() {
        let mut c = Criterion { iters: 2 };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut seen = Vec::new();
        for n in [5u64, 7] {
            group.bench_with_input(BenchmarkId::new("p", n), &n, |b, &n| {
                b.iter(|| seen.push(n));
            });
        }
        group.finish();
        assert_eq!(seen, vec![5, 5, 7, 7]);
    }
}
