//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of proptest it uses: the [`proptest!`] macro family
//! (`prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`,
//! `prop_oneof!`), [`Strategy`] with `prop_map`, `any::<T>()`, range and
//! tuple strategies, [`Just`], `prop::collection::{vec, btree_set}`, and a
//! small regex-subset string strategy (`"[a-z]{1,8}"`).
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case number and the
//!   per-test deterministic seed instead of a minimal counterexample.
//! * **Deterministic inputs.** Cases are derived from a fixed seed mixed
//!   with the test's name, so failures always reproduce exactly.
//! * `prop_assume!` skips the case rather than resampling it.

pub mod strategy;

pub use strategy::{
    any, Any, Arbitrary, BoxedFnStrategy, Just, Map, OneOf, SizeRange, Strategy, TestRng,
};

/// Strategy constructors namespaced like real proptest (`prop::collection`).
pub mod prop {
    /// Strategies producing collections.
    pub mod collection {
        pub use crate::strategy::collection::{btree_set, vec};
    }

    /// Strategies sampling from explicit value lists.
    pub mod sample {
        pub use crate::strategy::sample::select;
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*!` failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` failed: the case is outside the property's domain.
    Reject,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Result type threaded through a property body by the macros.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite fast while
        // still exercising each property broadly. Override per block with
        // `#![proptest_config(ProptestConfig::with_cases(n))]`.
        ProptestConfig { cases: 64 }
    }
}

/// Everything a property-test file needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError, TestCaseResult,
    };
}

/// Runs one property: samples `cases` inputs and invokes `body` on each.
///
/// Called by the [`proptest!`] macro expansion; not public API in real
/// proptest, public here so the macro can reach it.
///
/// # Panics
/// Panics (failing the enclosing `#[test]`) on the first failing case.
pub fn run_property(
    test_name: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let mut rejected = 0u32;
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(test_name, case);
        match body(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{test_name}' failed at case {case}/{}: {msg}", config.cases)
            }
        }
    }
    assert!(
        rejected < config.cases,
        "property '{test_name}' rejected all {rejected} cases (prop_assume too strict)"
    );
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`] (public only for macro reach).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::run_property(stringify!($name), &config, |prop_rng| {
                    $(let $arg = $crate::Strategy::new_value(&($strat), prop_rng);)*
                    // Bodies that mutate captured state need `mut`; pure
                    // bodies do not — allow both.
                    #[allow(unused_mut)]
                    let mut case = || -> $crate::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    case()
                });
            }
        )*
    };
}

/// Asserts a condition inside a property; failures report the case instead
/// of unwinding through arbitrary stack frames.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), l, r);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{}\n  both: {:?}", format!($($fmt)*), l);
    }};
}

/// Skips the current case when its inputs fall outside the property's
/// domain.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $({
                let s = $strat;
                $crate::BoxedFnStrategy::new(move |rng| $crate::Strategy::new_value(&s, rng))
            }),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 10u32..20, y in 0u64..=5, f in 0.5f64..1.5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 5);
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn tuples_and_maps(pair in (0usize..4, 1u64..9).prop_map(|(a, b)| (a, b * 2))) {
            prop_assert!(pair.0 < 4);
            prop_assert!(pair.1 % 2 == 0 && pair.1 < 18);
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(any::<bool>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn fixed_size_vec(v in prop::collection::vec(any::<u8>(), 5)) {
            prop_assert_eq!(v.len(), 5);
        }

        #[test]
        fn btree_sets_respect_bounds(s in prop::collection::btree_set(0u64..1_000, 1..6)) {
            prop_assert!(!s.is_empty() && s.len() < 6);
        }

        #[test]
        fn oneof_covers_all_arms(x in prop_oneof![Just(1u8), Just(2u8), 3u8..5]) {
            prop_assert!((1..5).contains(&x));
        }

        #[test]
        fn regex_strings_match_subset(s in "[a-z]{1,8}") {
            prop_assert!((1..=8).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn assume_rejects_cleanly(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn cases_are_deterministic_per_test() {
        let collect = || {
            let mut out = Vec::new();
            crate::run_property("det", &crate::ProptestConfig::with_cases(8), |rng| {
                out.push(crate::Strategy::new_value(&(0u64..1_000_000), rng));
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        crate::run_property("fails", &crate::ProptestConfig::with_cases(4), |_rng| {
            Err(crate::TestCaseError::fail("boom"))
        });
    }
}
