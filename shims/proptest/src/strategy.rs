//! Value-generation strategies (no shrinking — see crate docs).

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-test generator (SplitMix64 core). Seeded from the
/// test's name and the case number, so every failure reproduces exactly.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// The generator for case `case` of test `test_name`.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case number.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in test_name.as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)) }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            let wide = u128::from(v) * u128::from(bound);
            if (wide as u64) <= zone {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy generating unconstrained values of `T` (see [`any`]).
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()` — the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing exactly one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + rng.unit_f64() * (end - start)
    }
}

macro_rules! impl_strategy_tuple {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A / 0);
impl_strategy_tuple!(A / 0, B / 1);
impl_strategy_tuple!(A / 0, B / 1, C / 2);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// A type-erased sampling function (one arm of [`OneOf`]).
pub struct BoxedFnStrategy<V> {
    sample: Box<dyn Fn(&mut TestRng) -> V>,
}

impl<V: Debug> BoxedFnStrategy<V> {
    /// Wraps a sampling closure.
    pub fn new(sample: impl Fn(&mut TestRng) -> V + 'static) -> Self {
        BoxedFnStrategy { sample: Box::new(sample) }
    }
}

impl<V: Debug> Strategy for BoxedFnStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        (self.sample)(rng)
    }
}

/// Uniform choice among arms (the `prop_oneof!` macro's backend).
pub struct OneOf<V> {
    arms: Vec<BoxedFnStrategy<V>>,
}

impl<V: Debug> OneOf<V> {
    /// A strategy choosing uniformly among `arms`.
    ///
    /// # Panics
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedFnStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V: Debug> Strategy for OneOf<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].new_value(rng)
    }
}

/// Collection sizes: a fixed count or a half-open range (real proptest's
/// `SizeRange`, reduced to the two forms the workspace uses).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.max <= self.min + 1 {
            self.min
        } else {
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: r.end() + 1 }
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{BTreeSet, Debug, SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` (see [`vec`]).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of values from `element`, sized by `size` (a count or a
    /// half-open range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` (see [`btree_set`]).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A set of distinct values from `element`, sized by `size`. Retries
    /// duplicate draws a bounded number of times; sparse element domains
    /// may yield fewer elements than requested (as in real proptest).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + Debug,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Explicit-list strategies (`prop::sample::*`).
pub mod sample {
    use super::{Debug, Strategy, TestRng};

    /// Strategy choosing among a fixed list (see [`select`]).
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// A uniformly random element of `options`.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// `&str` regex strategies, supporting the subset the workspace uses:
/// concatenations of literal characters and character classes
/// (`[a-z0-9/ ]`), each optionally repeated `{m,n}`, `{n}`, `*`, `+` or
/// `?`. Anything fancier panics with a clear message.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let pattern = regex_lite::parse(self);
        regex_lite::generate(&pattern, rng)
    }
}

mod regex_lite {
    use super::TestRng;

    pub(super) enum Piece {
        /// One of these characters…
        Class(Vec<char>),
        /// …repeated between `min` and `max` times (inclusive).
        Repeat(Box<Piece>, usize, usize),
    }

    pub(super) fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0usize;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed '[' in regex strategy {pattern:?}"));
                    let class = parse_class(&chars[i + 1..i + close]);
                    i += close + 1;
                    Piece::Class(class)
                }
                '.' => {
                    i += 1;
                    Piece::Class((' '..='~').collect())
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("dangling escape in regex strategy {pattern:?}"));
                    i += 1;
                    Piece::Class(vec![c])
                }
                '(' | ')' | '|' | '^' | '$' => {
                    panic!(
                        "regex strategy shim does not support {:?} (pattern {pattern:?})",
                        chars[i]
                    )
                }
                c => {
                    i += 1;
                    Piece::Class(vec![c])
                }
            };
            // Optional repetition suffix.
            let piece = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unclosed '{{' in regex strategy {pattern:?}"));
                    let spec: String = chars[i + 1..i + close].iter().collect();
                    i += close + 1;
                    let (min, max) = match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("repetition lower bound"),
                            hi.trim().parse().expect("repetition upper bound"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("repetition count");
                            (n, n)
                        }
                    };
                    Piece::Repeat(Box::new(atom), min, max)
                }
                Some('*') => {
                    i += 1;
                    Piece::Repeat(Box::new(atom), 0, 8)
                }
                Some('+') => {
                    i += 1;
                    Piece::Repeat(Box::new(atom), 1, 8)
                }
                Some('?') => {
                    i += 1;
                    Piece::Repeat(Box::new(atom), 0, 1)
                }
                _ => atom,
            };
            pieces.push(piece);
        }
        pieces
    }

    fn parse_class(body: &[char]) -> Vec<char> {
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                for c in body[i]..=body[i + 2] {
                    out.push(c);
                }
                i += 3;
            } else {
                out.push(body[i]);
                i += 1;
            }
        }
        assert!(!out.is_empty(), "empty character class in regex strategy");
        out
    }

    pub(super) fn generate(pieces: &[Piece], rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in pieces {
            emit(piece, rng, &mut out);
        }
        out
    }

    fn emit(piece: &Piece, rng: &mut TestRng, out: &mut String) {
        match piece {
            Piece::Class(chars) => {
                out.push(chars[rng.below(chars.len() as u64) as usize]);
            }
            Piece::Repeat(inner, min, max) => {
                let n = *min + rng.below((*max - *min + 1) as u64) as usize;
                for _ in 0..n {
                    emit(inner, rng, out);
                }
            }
        }
    }
}
