//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`rngs::SmallRng`]
//! (xoshiro256++, the same generator real `rand` 0.9 uses for `SmallRng`
//! on 64-bit targets), the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, and
//! the slice helpers in [`seq`]. Everything is deterministic given a seed;
//! no OS entropy source is ever touched (simulations must be reproducible).
//!
//! Only what the workspace calls is implemented. Method names and semantics
//! follow `rand` 0.9 (`random`, `random_range`, `choose`, `shuffle`) so the
//! shim can be swapped for the real crate without touching call sites.

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// The raw generator interface: a source of uniformly distributed bits.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `state`
    /// (SplitMix64 seed expansion, as in real `rand`).
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable uniformly from the generator's raw bits
/// (`rng.random::<T>()`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly samplable from a bounded range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws from `[start, end)` (`inclusive = false`) or `[start, end]`
    /// (`inclusive = true`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_bounds<R: RngCore + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        inclusive: bool,
    ) -> Self;
}

/// Ranges usable with [`Rng::random_range`].
///
/// Implemented as a *single blanket impl* per range shape (exactly like
/// real `rand`): this is what lets integer-literal ranges infer their type
/// from the surrounding expression.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_bounds(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_bounds(rng, start, end, true)
    }
}

/// Uniform integer in `[0, bound)` via Lemire's widening-multiply method
/// (unbiased; rejection loop terminates with probability 1).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Fast path for power-of-two bounds.
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = u128::from(v) * u128::from(bound);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_bounds<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u64).wrapping_sub(start as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(uniform_below(rng, span + 1) as $t)
                } else {
                    assert!(start < end, "cannot sample empty range");
                    let span = (end as u64).wrapping_sub(start as u64);
                    start.wrapping_add(uniform_below(rng, span) as $t)
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_bounds<R: RngCore + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        inclusive: bool,
    ) -> Self {
        assert!(if inclusive { start <= end } else { start < end }, "cannot sample empty range");
        let u: f64 = StandardSample::sample(rng);
        start + u * (end - start)
    }
}

/// The user-facing generator interface (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// A value sampled uniformly from `T`'s full domain (`[0, 1)` for
    /// floats).
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// A value sampled uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let va: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.random()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..16).map(|_| c.random()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.random_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = r.random_range(0..=5u64);
            assert!(y <= 5);
            let f = r.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_float_distribution_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn small_range_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[r.random_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }
}
