//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG: xoshiro256++ — the same algorithm
/// real `rand` 0.9 uses for `SmallRng` on 64-bit platforms. Period 2^256−1,
/// passes BigCrush; **not** cryptographically secure (irrelevant here: the
/// workspace only runs reproducible simulations).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors (and
        // used by real rand): guarantees a non-zero state for every seed.
        let mut sm = state;
        SmallRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the all-distinct reference
        // state {1, 2, 3, 4} (computed from the public domain reference
        // implementation).
        let mut r = SmallRng { s: [1, 2, 3, 4] };
        assert_eq!(r.next_u64(), 41943041);
        assert_eq!(r.next_u64(), 58720359);
        assert_eq!(r.next_u64(), 3588806011781223);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = SmallRng::seed_from_u64(0);
        let outs: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(outs.iter().any(|&x| x != 0));
        assert_ne!(outs[0], outs[1]);
    }
}
