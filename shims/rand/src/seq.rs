//! Sequence-related helpers (`choose`, `shuffle`).

use crate::Rng;

/// Random element selection from slices.
pub trait IndexedRandom {
    /// The element type.
    type Item;

    /// A uniformly random element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> IndexedRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

/// In-place random reordering of slices.
pub trait SliceRandom {
    /// Uniformly permutes the slice (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::{RngCore, SeedableRng};

    #[test]
    fn choose_covers_all_elements() {
        let mut r = SmallRng::seed_from_u64(11);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*items.as_slice().choose(&mut r).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.as_slice().choose(&mut r).is_none());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    /// `RngCore` must stay usable through `&mut` references (call sites pass
    /// `&mut SmallRng` into generic `R: Rng` functions).
    #[test]
    fn works_through_mut_reference() {
        fn pick<R: RngCore>(rng: &mut R, xs: &[u8]) -> u8 {
            *xs.choose(rng).unwrap()
        }
        let mut r = SmallRng::seed_from_u64(1);
        let _ = pick(&mut r, &[1, 2, 3]);
    }
}
