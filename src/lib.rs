//! # pdht — a query-adaptive partial distributed hash table
//!
//! A full reproduction of *"A Query-Adaptive Partial Distributed Hash Table
//! for Peer-to-Peer Systems"* (Klemm, Datta, Aberer — EDBT 2004 workshops):
//! the analytical cost model (Eq. 1–17), every substrate the paper's system
//! rests on (a P-Grid-style trie DHT, a Chord ring, a Gnutella-like
//! unstructured overlay, replica gossip, churn), the TTL-based selection
//! algorithm itself, and the experiment harness regenerating every table
//! and figure of the evaluation (see `DESIGN.md` for the experiment index).
//!
//! This facade crate re-exports the workspace by topic:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`types`] | `crates/types` | ids, keys, message taxonomy, liveness, RNG streams |
//! | [`zipf`] | `crates/zipf` | Zipf pmf/cdf, per-round probabilities, popularity shift |
//! | [`model`] | `crates/model` | the analytical cost model and figure sweeps |
//! | [`sim`] | `crates/sim` | deterministic event queue, latency models, round driver, metrics |
//! | [`overlay`] | `crates/overlay` | the [`overlay::Overlay`] trait, trie + Chord + Kademlia DHTs, churn, conformance kit |
//! | [`unstructured`] | `crates/unstructured` | random graphs, flooding, k-random-walks |
//! | [`gossip`] | `crates/gossip` | replica groups, push/pull rumor spreading |
//! | [`workload`] | `crates/workload` | news metadata, key catalogs, query/update streams |
//! | [`core`] | `crates/core` | partial index, TTL policies, the event-driven network engine |
//!
//! Two pieces sit outside the facade: `crates/bench` (experiment binaries
//! and criterion micro-benchmarks) and `shims/` (offline stand-ins for
//! `rand`/`proptest`/`criterion`, vendored because the build environment
//! has no crates.io access).
//!
//! The network engine (`core::network`) is message-granular *all the way
//! down*: round phases, the individual hops of in-flight queries, and the
//! per-peer background work — each peer's routing-table maintenance tick,
//! TTL eviction sweep, and the waves of in-flight update propagations —
//! are events on [`sim::EventQueue`], with per-hop delays drawn from a
//! pluggable [`sim::LatencyModel`] ([`core::LatencyConfig`]; `Zero` plus
//! the default [`core::BackgroundSchedule`] reproduces the paper's
//! whole-round semantics bit-for-bit, non-zero models surface p50/p95/p99
//! query latency, jittered schedules spread background work across each
//! round for 100k+-peer scenarios — experiment S4). In-flight contexts
//! park in a generational [`sim::Slab`] and the per-peer stores key by
//! dense index over a flat refcount arena, so event dispatch is
//! allocation-free. The structured overlay is selected at
//! runtime via [`core::OverlayKind`] — the same simulation runs over the
//! paper's trie, a Chord ring, or a Kademlia-style XOR DHT with k-bucket
//! routing and XOR-prefix replica groups (ablation A2 in `DESIGN.md`).
//! Every substrate — current and future — passes the shared
//! [`overlay::conformance`] suite, which property-checks the
//! [`overlay::Overlay`] contract (partition invariants, hop accounting,
//! `lookup` ≡ stepped `next_hop`, `maintenance_round` ≡ per-peer
//! `maintenance_step`, determinism, churn liveness) from a single test
//! body per invariant.
//!
//! # Example
//!
//! ```
//! use pdht::model::{Scenario, StrategyCosts};
//!
//! // Reproduce one x-axis point of the paper's Fig. 1.
//! let costs = StrategyCosts::evaluate(&Scenario::table1(), 1.0 / 600.0).unwrap();
//! assert!(costs.partial_ideal < costs.index_all.min(costs.no_index));
//! ```

pub use pdht_core as core;
pub use pdht_gossip as gossip;
pub use pdht_model as model;
pub use pdht_overlay as overlay;
pub use pdht_sim as sim;
pub use pdht_types as types;
pub use pdht_unstructured as unstructured;
pub use pdht_workload as workload;
pub use pdht_zipf as zipf;

/// The crate version (workspace-wide).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile_and_link() {
        let s = crate::model::Scenario::table1();
        assert_eq!(s.num_peers, 20_000);
        let d = crate::zipf::ZipfDistribution::new(10, 1.2).unwrap();
        assert!(d.prob(1) > d.prob(10));
        assert!(!crate::VERSION.is_empty());
    }
}
