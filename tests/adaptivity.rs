//! The §5.2/§6 adaptivity claim, as an automated test: after a popularity
//! shift the index must re-learn the new head without intervention.

use pdht::core::{PdhtConfig, PdhtNetwork, Strategy, TtlPolicy};
use pdht::model::Scenario;
use pdht::zipf::{PopularityShift, RankMap};

#[test]
fn index_recovers_after_popularity_rotation() {
    let scenario = Scenario::table1_scaled(40); // 500 peers, 1 000 keys
    let keys = scenario.keys as usize;
    let shift_round = 150u64;
    let total = 400u64;

    let shift = PopularityShift::new(vec![
        (0, RankMap::identity(keys)),
        (shift_round, RankMap::rotation(keys, keys / 2)),
    ])
    .unwrap();

    let mut cfg = PdhtConfig::new(scenario, 1.0 / 10.0, Strategy::Partial);
    cfg.shift = Some(shift);
    cfg.ttl_policy = TtlPolicy::Fixed(60);
    cfg.purge_stride = 2;
    cfg.seed = 21;

    let mut net = PdhtNetwork::new(cfg).unwrap();
    net.run(total);

    let before = net.report(shift_round - 60, shift_round - 1);
    let right_after = net.report(shift_round, shift_round + 29);
    let recovered = net.report(total - 60, total - 1);

    assert!(before.p_indexed > 0.6, "steady state first: {:.3}", before.p_indexed);
    assert!(
        right_after.p_indexed < before.p_indexed - 0.03,
        "shift must dent the hit rate: {:.3} -> {:.3}",
        before.p_indexed,
        right_after.p_indexed
    );
    assert!(
        recovered.p_indexed > before.p_indexed - 0.05,
        "hit rate must recover: {:.3} vs {:.3}",
        recovered.p_indexed,
        before.p_indexed
    );
}

#[test]
fn random_reshuffle_also_recovers() {
    // Harsher than rotation: a full random permutation of popularity.
    let scenario = Scenario::table1_scaled(40);
    let keys = scenario.keys as usize;
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(99);
    let shift = PopularityShift::new(vec![
        (0, RankMap::identity(keys)),
        (150, RankMap::random(keys, &mut rng)),
    ])
    .unwrap();

    let mut cfg = PdhtConfig::new(scenario, 1.0 / 10.0, Strategy::Partial);
    cfg.shift = Some(shift);
    cfg.ttl_policy = TtlPolicy::Fixed(60);
    cfg.purge_stride = 2;
    cfg.seed = 5;

    let mut net = PdhtNetwork::new(cfg).unwrap();
    net.run(400);
    let before = net.report(90, 149);
    let recovered = net.report(340, 399);
    assert!(
        recovered.p_indexed > before.p_indexed - 0.05,
        "reshuffle recovery: {:.3} vs {:.3}",
        recovered.p_indexed,
        before.p_indexed
    );
}

#[test]
fn indexed_set_actually_turns_over() {
    // Not just the hit rate: the *content* of the index must change — after
    // the shift the index size stays in the same band while the hit rate
    // recovers, which is only possible if the resident keys rotated.
    let scenario = Scenario::table1_scaled(40);
    let keys = scenario.keys as usize;
    let shift = PopularityShift::new(vec![
        (0, RankMap::identity(keys)),
        (150, RankMap::rotation(keys, keys / 2)),
    ])
    .unwrap();
    let mut cfg = PdhtConfig::new(scenario, 1.0 / 10.0, Strategy::Partial);
    cfg.shift = Some(shift);
    cfg.ttl_policy = TtlPolicy::Fixed(60);
    cfg.purge_stride = 2;
    cfg.seed = 13;
    let mut net = PdhtNetwork::new(cfg).unwrap();
    net.run(400);
    let before = net.report(90, 149);
    let after = net.report(340, 399);
    let ratio = after.indexed_keys / before.indexed_keys.max(1.0);
    assert!(
        (0.5..=2.0).contains(&ratio),
        "index size should stay in the same band across the shift: {:.0} -> {:.0}",
        before.indexed_keys,
        after.indexed_keys
    );
    assert!(after.p_indexed > 0.6);
}
