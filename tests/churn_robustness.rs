//! Failure injection: the partial DHT under churn and blackouts.

use pdht::core::{PdhtConfig, PdhtNetwork, Strategy, TtlPolicy};
use pdht::model::Scenario;
use pdht::overlay::ChurnConfig;

fn churny_cfg(mean_on: f64, mean_off: f64) -> PdhtConfig {
    let mut cfg = PdhtConfig::new(Scenario::table1_scaled(40), 1.0 / 10.0, Strategy::Partial);
    cfg.churn = ChurnConfig { mean_online_secs: mean_on, mean_offline_secs: mean_off };
    cfg.ttl_policy = TtlPolicy::Fixed(80);
    cfg.purge_stride = 4;
    cfg.seed = 17;
    cfg
}

#[test]
fn keeps_answering_under_moderate_churn() {
    // 60 % availability, sessions of ~5 min.
    let mut net = PdhtNetwork::new(churny_cfg(300.0, 200.0)).unwrap();
    net.run(400);
    let rep = net.report(200, 399);
    assert!((rep.availability - 0.6).abs() < 0.08, "availability {:.3}", rep.availability);
    // The index keeps a meaningful hit rate despite replica loss.
    assert!(rep.p_indexed > 0.4, "pIndxd {:.3}", rep.p_indexed);
    // Some queries are lost to offline origins — that is the model's
    // interpretation too (offline peers don't query).
    assert!(rep.skipped_offline > 0);
}

#[test]
fn heavy_churn_degrades_gracefully_not_catastrophically() {
    // 40 % availability, very short sessions — far worse than Gnutella.
    let mut net = PdhtNetwork::new(churny_cfg(120.0, 180.0)).unwrap();
    net.run(400);
    let rep = net.report(200, 399);
    assert!(rep.availability < 0.5);
    // Even here, the combination of replica flooding + broadcast fallback
    // keeps most answered queries correct; total collapse would show up as
    // mass search failures.
    let answered_rounds = 200.0;
    let failures_per_round = rep.search_failures as f64 / answered_rounds;
    assert!(
        failures_per_round < 5.0,
        "search failures per round too high: {failures_per_round:.2}"
    );
}

#[test]
fn mass_blackout_and_recovery() {
    // Force 70 % of peers offline instantly, then let churn resurrect them.
    let mut cfg = churny_cfg(600.0, 60.0); // short absences → fast recovery
    cfg.seed = 23;
    let mut net = PdhtNetwork::new(cfg).unwrap();
    net.run(100);
    let healthy = net.report(50, 99);

    // Synthetic disaster via the churn override.
    net.force_blackout(0.7);
    net.run(50);
    let hurt = net.report(100, 149);

    net.run(300);
    let recovered = net.report(350, 449);

    assert!(hurt.availability < healthy.availability);
    assert!(
        recovered.availability > 0.8,
        "population should come back: {:.3}",
        recovered.availability
    );
    assert!(
        recovered.p_indexed >= healthy.p_indexed - 0.15,
        "hit rate should recover: {:.3} vs healthy {:.3}",
        recovered.p_indexed,
        healthy.p_indexed
    );
}

#[test]
fn static_network_has_no_churn_artifacts() {
    let mut cfg = churny_cfg(300.0, 200.0);
    cfg.churn = ChurnConfig::none();
    let mut net = PdhtNetwork::new(cfg).unwrap();
    net.run(150);
    let rep = net.report(50, 149);
    assert_eq!(rep.availability, 1.0);
    assert_eq!(rep.skipped_offline, 0);
    assert_eq!(rep.search_failures, 0);
    assert_eq!(rep.lookup_failures, 0);
}
