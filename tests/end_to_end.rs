//! End-to-end behaviour of the full network harness across strategies.
//!
//! These run a 500-peer (1/40-scale) network — large enough for the trie,
//! groups and walks to be non-trivial, small enough for debug-mode CI.

use pdht::core::{PdhtConfig, PdhtNetwork, Strategy, TtlPolicy};
use pdht::model::Scenario;
use pdht::types::MessageKind;

fn base_cfg(strategy: Strategy, f_qry: f64) -> PdhtConfig {
    let mut cfg = PdhtConfig::new(Scenario::table1_scaled(40), f_qry, strategy);
    cfg.seed = 7;
    cfg
}

#[test]
fn partial_index_converges_to_model_scale() {
    let mut cfg = base_cfg(Strategy::Partial, 1.0 / 20.0);
    cfg.ttl_policy = TtlPolicy::Fixed(80);
    cfg.purge_stride = 4;
    let mut net = PdhtNetwork::new(cfg).unwrap();
    net.run(240);
    let rep = net.report(120, 239);
    // The TTL index must stabilize: non-empty, far below the full key set.
    assert!(rep.indexed_keys > 20.0, "indexed {:.0}", rep.indexed_keys);
    assert!(rep.indexed_keys < 900.0, "indexed {:.0} of 1000", rep.indexed_keys);
    // Hits must dominate under a Zipf head.
    assert!(rep.p_indexed > 0.5, "pIndxd {:.3}", rep.p_indexed);
    assert_eq!(rep.search_failures, 0, "static network must always find content");
}

#[test]
fn strategies_pay_for_different_things() {
    let mut reports = Vec::new();
    for strategy in [Strategy::Partial, Strategy::IndexAll, Strategy::NoIndex] {
        let mut net = PdhtNetwork::new(base_cfg(strategy, 1.0 / 30.0)).unwrap();
        net.run(60);
        reports.push((strategy, net.report(20, 59)));
    }
    let kind_rate = |rep: &pdht::core::SimReport, k: MessageKind| -> f64 {
        rep.by_kind.iter().filter(|(kk, _)| *kk == k).map(|&(_, v)| v).sum()
    };
    for (strategy, rep) in &reports {
        match strategy {
            Strategy::NoIndex => {
                assert_eq!(kind_rate(rep, MessageKind::Probe), 0.0);
                assert_eq!(kind_rate(rep, MessageKind::RouteHop), 0.0);
                assert!(kind_rate(rep, MessageKind::WalkStep) > 0.0);
            }
            Strategy::IndexAll => {
                assert!(kind_rate(rep, MessageKind::Probe) > 0.0);
                assert!(kind_rate(rep, MessageKind::RouteHop) > 0.0);
                // A preloaded index answers everything without walks.
                assert!(rep.p_indexed > 0.95);
            }
            Strategy::Partial => {
                assert!(kind_rate(rep, MessageKind::Probe) > 0.0);
                assert!(kind_rate(rep, MessageKind::WalkStep) > 0.0, "misses walk");
                assert!(kind_rate(rep, MessageKind::IndexInsert) > 0.0, "misses insert");
            }
        }
    }
}

#[test]
fn runs_are_reproducible_and_seed_sensitive() {
    let fingerprint = |seed: u64| {
        let mut cfg = base_cfg(Strategy::Partial, 1.0 / 30.0);
        cfg.seed = seed;
        let mut net = PdhtNetwork::new(cfg).unwrap();
        net.run(40);
        let rep = net.report(0, 39);
        (
            (rep.msgs_per_round * 1000.0) as u64,
            (rep.p_indexed * 1e6) as u64,
            rep.indexed_keys as u64,
        )
    };
    assert_eq!(fingerprint(11), fingerprint(11));
    assert_ne!(fingerprint(11), fingerprint(12));
}

#[test]
fn adaptive_ttl_policy_runs_and_reports() {
    let mut cfg = base_cfg(Strategy::Partial, 1.0 / 20.0);
    cfg.ttl_policy = TtlPolicy::Adaptive { target_hit_rate: 0.85 };
    cfg.adaptive_window = 20;
    let mut net = PdhtNetwork::new(cfg).unwrap();
    let initial_ttl = net.ttl_rounds();
    net.run(200);
    let rep = net.report(100, 199);
    assert!(rep.p_indexed > 0.3);
    // The controller must have actually adjusted at least once (the initial
    // model estimate rarely sits exactly at the target).
    assert_ne!(net.ttl_rounds(), initial_ttl, "controller never adjusted");
}

#[test]
fn zero_query_load_is_quiet_except_maintenance() {
    let mut net = PdhtNetwork::new(base_cfg(Strategy::IndexAll, 0.0)).unwrap();
    net.run(30);
    let rep = net.report(0, 29);
    assert_eq!(rep.p_indexed, 0.0, "no queries, no hits");
    let probes: f64 =
        rep.by_kind.iter().filter(|(k, _)| *k == MessageKind::Probe).map(|&(_, v)| v).sum();
    assert!(probes > 0.0, "maintenance continues without load");
    let walks: f64 =
        rep.by_kind.iter().filter(|(k, _)| *k == MessageKind::WalkStep).map(|&(_, v)| v).sum();
    assert_eq!(walks, 0.0);
}

#[test]
fn partial_beats_no_index_when_broadcast_is_expensive() {
    // Drive broadcast cost up (low replication) so the index pays off even
    // at the test's small scale, then verify measured ordering.
    let scenario = Scenario { repl: 10, ..Scenario::table1_scaled(40) };
    let run = |strategy| {
        let mut cfg = PdhtConfig::new(scenario.clone(), 1.0 / 10.0, strategy);
        cfg.seed = 3;
        cfg.ttl_policy = TtlPolicy::Fixed(100);
        let mut net = PdhtNetwork::new(cfg).unwrap();
        net.run(200);
        net.report(100, 199).msgs_per_round
    };
    let partial = run(Strategy::Partial);
    let no_index = run(Strategy::NoIndex);
    assert!(
        partial < no_index,
        "partial ({partial:.0}) should beat noIndex ({no_index:.0}) at repl=10"
    );
}
