//! Cross-crate consistency of the analytical model: the figure generators,
//! the strategy evaluator and the selection model must all agree with the
//! primitive equations, across scenario perturbations — not just at the
//! Table 1 point.

use pdht::model::figures::{fig1, fig2, fig3, fig4};
use pdht::model::params::QUERY_FREQ_SWEEP;
use pdht::model::{CostModel, IdealPartial, Scenario, SelectionModel, StrategyCosts};
use pdht::zipf::RoundModel;
use proptest::prelude::*;

#[test]
fn strategy_costs_decompose_into_primitives() {
    let s = Scenario::table1();
    let cost = CostModel::new(&s);
    for &f_qry in &QUERY_FREQ_SWEEP {
        let c = StrategyCosts::evaluate(&s, f_qry).unwrap();
        let q = s.queries_per_round(f_qry);

        // Eq. 12 exactly.
        assert!((c.no_index - q * cost.c_s_unstr()).abs() < 1e-9);

        // Eq. 11 exactly.
        let nap = cost.num_active_peers(f64::from(s.keys));
        let expect =
            f64::from(s.keys) * cost.c_ind_key(nap, f64::from(s.keys)) + q * cost.c_s_indx(nap);
        assert!((c.index_all - expect).abs() < 1e-9);

        // Eq. 13 from the fixed-point solution.
        let ideal = &c.ideal;
        let expect = f64::from(ideal.max_rank) * ideal.c_ind_key
            + ideal.p_indexed * q * ideal.c_s_indx
            + (1.0 - ideal.p_indexed) * q * cost.c_s_unstr();
        assert!((c.partial_ideal - expect).abs() < 1e-9);
    }
}

#[test]
fn selection_model_reconstructs_eq17() {
    let s = Scenario::table1();
    let cost = CostModel::new(&s);
    for &f_qry in &QUERY_FREQ_SWEEP {
        let m = SelectionModel::evaluate(&s, f_qry).unwrap();
        let q = s.queries_per_round(f_qry);
        let round = RoundModel::new(s.keys as usize, s.alpha, q).unwrap();

        // Eq. 14/15 recomputed from the zipf crate directly.
        assert!((m.index_size - round.expected_index_size_ttl(m.key_ttl)).abs() < 1e-6);
        assert!((m.p_indexed - round.p_indexed_ttl(m.key_ttl)).abs() < 1e-9);

        // Eq. 17 reassembled.
        let nap = cost.num_active_peers(m.index_size);
        let c2 = cost.c_s_indx2(nap);
        let expect = m.index_size * cost.c_rtn(nap, m.index_size)
            + m.p_indexed * q * c2
            + (1.0 - m.p_indexed) * q * (c2 + cost.c_s_unstr() + c2);
        assert!((m.total_cost - expect).abs() < 1e-6);
    }
}

#[test]
fn figures_are_projections_of_the_same_model() {
    let s = Scenario::table1();
    let f1 = fig1(&s).unwrap();
    let f2 = fig2(&s).unwrap();
    let f3 = fig3(&s).unwrap();
    let f4 = fig4(&s).unwrap();
    for i in 0..QUERY_FREQ_SWEEP.len() {
        let c = StrategyCosts::evaluate(&s, QUERY_FREQ_SWEEP[i]).unwrap();
        assert!((f1[i].partial - c.partial_ideal).abs() < 1e-9);
        assert!((f2[i].vs_index_all - c.saving_vs_index_all()).abs() < 1e-12);
        assert!((f3[i].p_indexed - c.ideal.p_indexed).abs() < 1e-12);
        let sel = SelectionModel::evaluate(&s, QUERY_FREQ_SWEEP[i]).unwrap();
        assert!((f4[i].total_cost - sel.total_cost).abs() < 1e-9);
    }
}

#[test]
fn paper_crossover_and_headline_numbers() {
    // The quantitative anchors hand-derived from the paper (DESIGN.md §4).
    let s = Scenario::table1();
    let cost = CostModel::new(&s);
    assert!((cost.c_s_unstr() - 720.0).abs() < 1e-9);

    let busy = StrategyCosts::evaluate(&s, 1.0 / 30.0).unwrap();
    assert!((busy.no_index - 480_000.0).abs() < 1.0);
    assert!((busy.index_all - 25_219.0).abs() < 50.0);
    assert!((busy.partial_ideal - 22_392.0).abs() < 200.0);

    // Fig. 1 crossover between 1/600 and 1/1800.
    let a = StrategyCosts::evaluate(&s, 1.0 / 600.0).unwrap();
    let b = StrategyCosts::evaluate(&s, 1.0 / 1800.0).unwrap();
    assert!(a.no_index > a.index_all && b.no_index < b.index_all);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fixed point exists and is internally consistent for any sane
    /// scenario, not just Table 1.
    #[test]
    fn ideal_partial_solves_for_random_scenarios(
        num_peers in 100u32..5_000,
        keys_factor in 1u32..5,
        repl in 2u32..60,
        stor in prop::sample::select(vec![20u32, 50, 100, 200]),
        alpha in 0.5f64..1.8,
        f_qry_denom in 10f64..10_000.0,
    ) {
        let s = Scenario {
            num_peers,
            keys: num_peers * keys_factor,
            repl: repl.min(num_peers),
            stor,
            alpha,
            ..Scenario::table1()
        };
        prop_assume!(s.validate().is_ok());
        let f_qry = 1.0 / f_qry_denom;
        let sol = IdealPartial::solve(&s, f_qry).unwrap();
        prop_assert!(sol.max_rank <= s.keys);
        prop_assert!((0.0..=1.0).contains(&sol.p_indexed));
        prop_assert!(sol.f_min >= 0.0);
        if sol.max_rank > 0 {
            prop_assert!(sol.num_active_peers >= 2.0);
            prop_assert!(sol.num_active_peers <= f64::from(s.num_peers));
        }
    }

    /// Ideal partial indexing never loses to either pure strategy — it can
    /// always degenerate into one of them (maxRank = keys or 0).
    #[test]
    fn ideal_partial_never_loses(
        repl in 5u32..80,
        alpha in 0.7f64..1.5,
        f_qry_denom in 20f64..8_000.0,
    ) {
        let s = Scenario { repl, alpha, ..Scenario::table1() };
        prop_assume!(s.validate().is_ok());
        let c = StrategyCosts::evaluate(&s, 1.0 / f_qry_denom).unwrap();
        // Small tolerance: the discrete fixed point can sit one rank off
        // the continuous optimum.
        prop_assert!(c.partial_ideal <= c.index_all * 1.001 + 1e-6);
        prop_assert!(c.partial_ideal <= c.no_index * 1.001 + 1e-6);
    }

    /// Selection-algorithm cost responds monotonically to TTL extremes:
    /// zero TTL degenerates to ≥ noIndex; the savings stay bounded by 1.
    #[test]
    fn selection_model_bounds(
        f_qry_denom in 20f64..8_000.0,
        ttl in 1f64..100_000.0,
    ) {
        let s = Scenario::table1();
        let m = SelectionModel::evaluate_with_ttl(&s, 1.0 / f_qry_denom, ttl).unwrap();
        prop_assert!(m.total_cost >= 0.0);
        prop_assert!((0.0..=1.0).contains(&m.p_indexed));
        prop_assert!(m.index_size >= 0.0 && m.index_size <= f64::from(s.keys));
        prop_assert!(m.saving_vs_no_index() <= 1.0);
        prop_assert!(m.saving_vs_index_all() <= 1.0);
    }
}
