//! The metadata pipeline end to end: articles → key extraction → catalog →
//! Zipf workload → TTL index, spanning `pdht-workload`, `pdht-zipf`,
//! `pdht-gossip` and `pdht-core`.

use pdht::core::{PartialIndex, Ttl};
use pdht::gossip::VersionedValue;
use pdht::types::{Key, RngStreams};
use pdht::workload::{KeyCatalog, NewsGenerator, QueryWorkload, UpdateProcess, STOP_WORDS};
use pdht::zipf::ZipfDistribution;

#[test]
fn catalog_keys_route_back_to_their_articles() {
    let streams = RngStreams::new(4);
    let mut rng = streams.stream("articles");
    let articles = NewsGenerator::new().articles(100, &mut rng);
    let catalog = KeyCatalog::build(&articles);

    for article in &articles {
        for key in article.keys() {
            let idx = catalog
                .index_of(key)
                .unwrap_or_else(|| panic!("key of article {} missing", article.id));
            // The owner is *an* article producing this string — for shared
            // metadata (same author/date) it may be an earlier one.
            let owner = catalog.article_of(idx);
            assert!(owner <= article.id, "owner must be first producer");
            assert_eq!(catalog.key(idx), key);
        }
    }
}

#[test]
fn stop_words_filtered_across_the_whole_corpus() {
    let streams = RngStreams::new(4);
    let mut rng = streams.stream("articles");
    let articles = NewsGenerator::new().articles(200, &mut rng);
    let catalog = KeyCatalog::build(&articles);
    for i in 0..catalog.len() {
        let s = catalog.key_string(i);
        if let Some(term) = s.strip_prefix("term=") {
            assert!(!STOP_WORDS.contains(&term), "stop word `{term}` made it into the catalog");
        }
    }
}

#[test]
fn zipf_workload_over_catalog_favours_head_articles() {
    let streams = RngStreams::new(4);
    let mut rng = streams.stream("pipeline");
    let articles = NewsGenerator::new().articles(100, &mut rng);
    let catalog = KeyCatalog::build(&articles);
    let workload = QueryWorkload::new(catalog.len(), 1.2, 500, 0.5, None).unwrap();

    let mut head_hits = 0usize;
    let mut total = 0usize;
    for round in 0..40 {
        for q in workload.round_queries(round, &mut rng) {
            assert!(q.key_index < catalog.len());
            total += 1;
            if q.key_index < catalog.len() / 100 {
                head_hits += 1;
            }
        }
    }
    assert!(total > 1_000);
    let frac = head_hits as f64 / total as f64;
    assert!(frac > 0.4, "1% head should draw >40% of queries, got {frac:.3}");
}

#[test]
fn ttl_index_tracks_update_versions() {
    // An index entry inserted before an article update serves a stale
    // version until it expires or is overwritten — exactly the laziness
    // the selection algorithm accepts. Verify version bookkeeping.
    let streams = RngStreams::new(4);
    let mut rng = streams.stream("updates");
    let mut updates = UpdateProcess::new(10, 3.0).unwrap(); // fast updates
    let mut index = PartialIndex::new(64);
    let key = Key::hash_str("title=Weather Iráklion&date=2004/03/14");
    let ki = 0u32; // dense index of this key in the (single-key) universe

    index.insert(
        ki,
        key,
        VersionedValue { version: updates.version(0), data: 0 },
        0,
        Ttl::Rounds(50),
    );
    let mut last_seen = 1u64;
    for now in 1..=100 {
        updates.round_updates(&mut rng);
        if now % 10 == 0 {
            // Re-broadcast fetches the fresh version and reinserts.
            let fresh = VersionedValue { version: updates.version(0), data: 0 };
            index.insert(ki, key, fresh, now, Ttl::Rounds(50));
            let got = index.peek(ki, now).unwrap();
            assert!(got.version >= last_seen, "versions must not regress");
            last_seen = got.version;
        }
    }
    assert!(last_seen > 1, "article 0 must have updated with 3 s lifetime");
    assert_eq!(index.peek(ki, 100).unwrap().version, updates.version(0));
}

#[test]
fn full_pipeline_selects_popular_metadata() {
    // 50 articles, Zipf queries, one shared TTL store: after a few hundred
    // rounds the store must contain mostly head keys.
    let streams = RngStreams::new(4);
    let mut rng = streams.stream("select");
    let articles = NewsGenerator::new().articles(50, &mut rng);
    let catalog = KeyCatalog::build(&articles);
    let zipf = ZipfDistribution::new(catalog.len(), 1.2).unwrap();
    let ttl = 40u64;
    let mut store = PartialIndex::new(catalog.len());

    let mut purged = Vec::new();
    for now in 0..400u64 {
        for _ in 0..20 {
            let rank = zipf.sample(&mut rng);
            let ki = (rank - 1) as u32;
            let key = catalog.key(rank - 1);
            if store.get_and_refresh(ki, now, Ttl::Rounds(ttl)).is_none() {
                store.insert(
                    ki,
                    key,
                    VersionedValue { version: 1, data: rank as u64 },
                    now,
                    Ttl::Rounds(ttl),
                );
            }
        }
        purged.clear();
        store.purge_expired_into(now, &mut purged);
    }

    // Resident keys should be dominated by the head of the ranking.
    let resident: Vec<usize> =
        (0..catalog.len()).filter(|&i| store.peek(i as u32, 399).is_some()).collect();
    assert!(!resident.is_empty());
    let head_resident = resident.iter().filter(|&&i| i < catalog.len() / 5).count();
    let frac = head_resident as f64 / resident.len() as f64;
    assert!(
        frac > 0.5,
        "top-20% ranks should dominate the index, got {frac:.3} of {} resident",
        resident.len()
    );
}
